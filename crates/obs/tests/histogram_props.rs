//! Partition-invariance property for histogram merging: however a sample
//! set is split across "threads", merging the per-thread histograms yields
//! exactly the histogram of recording everything on one thread. This is
//! the property that makes the sweep runner's latency distributions
//! deterministic for any worker-thread count.

use nab_obs::Histogram;
use proptest::prelude::*;

fn record_all(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 1 thread vs N threads: any chunking of the samples, merged in
    /// order, equals single-threaded recording.
    #[test]
    fn merge_is_partition_invariant(
        samples in proptest::collection::vec(any::<u64>(), 0..200),
        threads in 1usize..8,
    ) {
        let whole = record_all(&samples);

        let chunk = samples.len().div_ceil(threads).max(1);
        let mut merged = Histogram::new();
        for part in samples.chunks(chunk) {
            merged.merge(&record_all(part));
        }
        prop_assert_eq!(&merged, &whole);

        // Reversed merge order too: merge must be commutative.
        let mut reversed = Histogram::new();
        for part in samples.chunks(chunk).rev() {
            reversed.merge(&record_all(part));
        }
        prop_assert_eq!(&reversed, &whole);
    }

    /// Exact stats survive any partition, and percentiles are bounded by
    /// the observed range with p0 = min, p100 = max.
    #[test]
    fn stats_and_percentiles_are_consistent(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let h = record_all(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(h.percentile(0.0), h.min());
        prop_assert_eq!(h.percentile(100.0), h.max());
        let (p50, p90, p99) = (h.percentile(50.0), h.percentile(90.0), h.percentile(99.0));
        prop_assert!(h.min() <= p50 && p50 <= p90 && p90 <= p99 && p99 <= h.max());
    }
}
