//! Structured event tracing: `Copy` events, thread-local buffering, and the
//! [`TraceSink`] trait.
//!
//! # Design
//!
//! Instrumentation points in the engine hot path must cost (almost) nothing
//! when tracing is off and must not allocate per event when it is on:
//!
//! - Events are plain `Copy` structs — no strings, no boxing. Context that
//!   would otherwise be repeated on every event (job index, stream,
//!   instance) lives in thread-local *context* fields set once by the
//!   enclosing scope ([`set_job`], [`set_stream`], [`set_instance`]).
//! - Each thread owns a preallocated buffer of [`BUFFER_CAPACITY`] events.
//!   [`emit`] appends to it and only calls the sink when the buffer fills;
//!   uninstalling the sink ([`set_thread_sink`] with `None`) flushes the
//!   remainder. Sinks therefore receive *batches*, not single events.
//! - Timestamps are nanoseconds from a process-wide monotonic epoch
//!   (first sink installation), captured **once** per event. A global
//!   atomic sequence number makes the interleaving of concurrently
//!   emitting threads reconstructable (and sortable) after the fact.
//! - With no sink installed on the current thread, [`emit`] is a
//!   thread-local load and a branch. No clock read, no sequence-number
//!   traffic, no buffer write.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events buffered per thread before a batch is handed to the sink.
pub const BUFFER_CAPACITY: usize = 1024;

/// A protocol phase, as instrumented in the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Phase 1 — unreliable broadcast down capacity-respecting
    /// arborescences.
    Phase1,
    /// Phase 2a — the coded equality check (Algorithm 1).
    Equality,
    /// Phase 2b — 1-bit Byzantine broadcast of MISMATCH flags.
    Flags,
    /// Phase 3 — dispute control.
    Dispute,
}

impl Phase {
    /// Stable lower-case name used in serialized traces and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Phase1 => "phase1",
            Phase::Equality => "equality",
            Phase::Flags => "flags",
            Phase::Dispute => "dispute",
        }
    }
}

/// What happened. Payload fields are the event-specific data; shared
/// context (job/stream/instance) lives on [`Event`] itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A sweep over `jobs` grid points is starting.
    SweepStart {
        /// Total number of jobs in the sweep grid.
        jobs: u64,
        /// GF kernel tier selected at runtime (`avx2`, `ssse3`,
        /// `portable`) — machine-dependent; trace comparisons normalize
        /// it away.
        tier: &'static str,
        /// Detected CPU SIMD features (comma-separated), for perf-trace
        /// provenance; machine-dependent like `tier`.
        cpu: &'static str,
    },
    /// The sweep finished (all jobs done, report assembled next).
    SweepEnd,
    /// A worker picked up the job named by the event's `job` field.
    JobStart,
    /// The job finished (its outcome is recorded in the report).
    JobEnd,
    /// A broadcast instance is starting.
    InstanceStart,
    /// The broadcast instance finished.
    InstanceEnd,
    /// The instance short-circuited: the source is already removed from
    /// `G_k`, every honest node defaults. No phases run.
    InstanceDefaulted,
    /// A protocol phase is starting.
    PhaseStart(Phase),
    /// The protocol phase finished.
    PhaseEnd(Phase),
    /// The plan cache served an [`ExecutionPlan`] without building.
    PlanCacheHit,
    /// The plan cache had no plan for this key; a build follows.
    PlanCacheMiss,
    /// A plan build completed (follows a miss) in `build_ns` nanoseconds.
    PlanBuilt {
        /// Wall-clock nanoseconds spent building the plan.
        build_ns: u64,
    },
    /// Per-`G_k` replanning patched the packing incrementally (γ/ρ bounds
    /// unchanged) in `ns` nanoseconds.
    PlanRepair {
        /// Wall-clock nanoseconds spent on the incremental repair.
        ns: u64,
    },
    /// Per-`G_k` replanning fell back to a full recompute (γ/ρ bounds
    /// changed) in `ns` nanoseconds.
    PlanFullRecompute {
        /// Wall-clock nanoseconds spent on the full recompute.
        ns: u64,
    },
    /// The plan cache loaded a persisted plan from its on-disk store.
    PlanDiskHit,
    /// The plan cache persisted a freshly built plan to its on-disk store.
    PlanDiskStore,
    /// A persisted plan failed verification (corrupt or stale) and was
    /// rejected; a rebuild follows.
    PlanDiskReject,
    /// Dispute control ran and produced `new_pairs` new dispute pairs.
    DisputeRaised {
        /// Number of dispute pairs added to the accusation graph.
        new_pairs: u32,
    },
    /// Dispute control exposed `node` as faulty; it leaves `G_{k+1}`.
    NodeExposed {
        /// The exposed node's id.
        node: u32,
    },
    /// Determinism-sanitizer digest of engine state at a phase boundary.
    ///
    /// Only emitted by builds with the `sanitize` feature enabled; two runs
    /// of the same configuration must produce identical digest sequences,
    /// so diffing traces pinpoints the first phase where determinism broke.
    DetSanDigest {
        /// The phase whose end state was digested.
        phase: Phase,
        /// FNV-1a digest of the canonical engine state after the phase.
        digest: u64,
    },
}

impl EventKind {
    /// Stable snake_case name used as the `kind` field in serialized
    /// traces.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SweepStart { .. } => "sweep_start",
            EventKind::SweepEnd => "sweep_end",
            EventKind::JobStart => "job_start",
            EventKind::JobEnd => "job_end",
            EventKind::InstanceStart => "instance_start",
            EventKind::InstanceEnd => "instance_end",
            EventKind::InstanceDefaulted => "instance_defaulted",
            EventKind::PhaseStart(_) => "phase_start",
            EventKind::PhaseEnd(_) => "phase_end",
            EventKind::PlanCacheHit => "plan_cache_hit",
            EventKind::PlanCacheMiss => "plan_cache_miss",
            EventKind::PlanBuilt { .. } => "plan_built",
            EventKind::PlanRepair { .. } => "plan_repair",
            EventKind::PlanFullRecompute { .. } => "plan_full_recompute",
            EventKind::PlanDiskHit => "plan_disk_hit",
            EventKind::PlanDiskStore => "plan_disk_store",
            EventKind::PlanDiskReject => "plan_disk_reject",
            EventKind::DisputeRaised { .. } => "dispute_raised",
            EventKind::NodeExposed { .. } => "node_exposed",
            EventKind::DetSanDigest { .. } => "detsan_digest",
        }
    }
}

/// One trace event: global order, timestamp, context, and the kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global emission order across all threads (0-based, gap-free as long
    /// as a single sink generation is active).
    pub seq: u64,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Sweep job index (0 outside any job).
    pub job: u64,
    /// Stream index within the job (0 outside any stream).
    pub stream: u32,
    /// 0-based broadcast instance index within the job.
    pub instance: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Receives batches of events from instrumented threads.
///
/// Implementations must be cheap and must **not** call back into [`emit`]
/// (the thread-local buffer is borrowed during delivery). Batches from
/// different threads arrive unordered; sort by [`Event::seq`] to recover
/// the global emission order.
pub trait TraceSink: Send + Sync {
    /// Deliver a batch of events emitted by one thread, in emission order.
    fn record_batch(&self, events: &[Event]);
}

/// A sink that discards everything. Useful for measuring instrumentation
/// overhead with the full emit path (clock, sequence, buffer) active.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record_batch(&self, _events: &[Event]) {}
}

/// A sink that accumulates events in memory, for tests and for the CLI's
/// end-of-run trace writers.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<Event>>,
}

impl BufferSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        // Poison-tolerant: the buffer only ever holds whole `Copy` events,
        // so a panicked recorder cannot leave it torn.
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all recorded events, sorted by global sequence number.
    pub fn take_sorted(&self) -> Vec<Event> {
        let mut out = std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        out.sort_by_key(|e| e.seq);
        out
    }
}

impl TraceSink for BufferSink {
    fn record_batch(&self, events: &[Event]) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(events);
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(crate::clock::mono_now)
}

struct ThreadState {
    sink: Option<Arc<dyn TraceSink>>,
    job: u64,
    stream: u32,
    instance: u64,
    buf: Vec<Event>,
}

impl ThreadState {
    const fn new() -> Self {
        Self {
            sink: None,
            job: 0,
            stream: 0,
            instance: 0,
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if let Some(sink) = &self.sink {
            if !self.buf.is_empty() {
                sink.record_batch(&self.buf);
                self.buf.clear();
            }
        }
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = const { RefCell::new(ThreadState::new()) };
}

/// Install (or, with `None`, remove) the trace sink for the **current
/// thread**. Removal and replacement flush any buffered events to the
/// outgoing sink first. Installing a sink preallocates the thread's event
/// buffer and pins the process-wide trace epoch if this is the first
/// installation ever.
///
/// Sinks are deliberately per-thread rather than global: parallel tests in
/// one binary would otherwise pollute each other's traces. Code that
/// spawns workers (the sweep runner) installs the shared sink on each
/// worker thread it creates.
pub fn set_thread_sink(sink: Option<Arc<dyn TraceSink>>) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.flush();
        if sink.is_some() {
            epoch(); // pin the epoch before the first event
            let shortfall = BUFFER_CAPACITY.saturating_sub(s.buf.capacity());
            s.buf.reserve_exact(shortfall);
        }
        s.sink = sink;
    });
}

/// True if a sink is installed on the current thread (i.e. [`emit`] will
/// record). Lets callers skip computing expensive event payloads.
pub fn enabled() -> bool {
    STATE.with(|s| s.borrow().sink.is_some())
}

/// Set the sweep-job context for subsequent events on this thread, and
/// reset the stream/instance context to 0.
pub fn set_job(job: u64) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.job = job;
        s.stream = 0;
        s.instance = 0;
    });
}

/// Set the stream context for subsequent events on this thread.
pub fn set_stream(stream: u32) {
    STATE.with(|s| s.borrow_mut().stream = stream);
}

/// Set the 0-based instance context for subsequent events on this thread.
pub fn set_instance(instance: u64) {
    STATE.with(|s| s.borrow_mut().instance = instance);
}

/// Record one event on the current thread. A no-op (one thread-local load
/// and a branch) when no sink is installed; otherwise captures the
/// timestamp and sequence number once and appends to the thread buffer,
/// flushing a full batch to the sink.
pub fn emit(kind: EventKind) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.sink.is_none() {
            return;
        }
        let ev = Event {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: epoch().elapsed().as_nanos() as u64,
            job: s.job,
            stream: s.stream,
            instance: s.instance,
            kind,
        };
        s.buf.push(ev);
        if s.buf.len() >= BUFFER_CAPACITY {
            s.flush();
        }
    });
}

/// Flush the current thread's buffered events to its sink, if any.
pub fn flush() {
    STATE.with(|s| s.borrow_mut().flush());
}

/// RAII guard for a phase: emits `PhaseStart` on construction and
/// `PhaseEnd` on drop, so every exit path (including `?` early returns)
/// closes the span.
#[must_use = "dropping the span immediately emits PhaseEnd right after PhaseStart"]
pub struct PhaseSpan {
    phase: Phase,
}

impl PhaseSpan {
    /// Open a phase span.
    pub fn enter(phase: Phase) -> Self {
        emit(EventKind::PhaseStart(phase));
        Self { phase }
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        emit(EventKind::PhaseEnd(self.phase));
    }
}

/// RAII guard for a broadcast instance: sets the instance context and
/// emits `InstanceStart` on construction, `InstanceEnd` on drop.
#[must_use = "dropping the span immediately emits InstanceEnd right after InstanceStart"]
pub struct InstanceSpan {
    _private: (),
}

impl InstanceSpan {
    /// Open an instance span for the given 0-based instance index.
    pub fn enter(instance: u64) -> Self {
        set_instance(instance);
        emit(EventKind::InstanceStart);
        Self { _private: () }
    }
}

impl Drop for InstanceSpan {
    fn drop(&mut self) {
        emit(EventKind::InstanceEnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_sink_is_a_no_op() {
        // Nothing to observe directly; this pins that no sink ⇒ no panic
        // and no state change visible afterwards.
        emit(EventKind::PlanCacheHit);
        assert!(!enabled());
    }

    #[test]
    fn events_reach_the_sink_on_flush_and_uninstall() {
        let sink = Arc::new(BufferSink::new());
        set_thread_sink(Some(sink.clone()));
        assert!(enabled());
        set_job(3);
        set_stream(1);
        let span = InstanceSpan::enter(7);
        emit(EventKind::PlanCacheMiss);
        emit(EventKind::PlanBuilt { build_ns: 42 });
        drop(span);
        assert!(sink.is_empty(), "events buffer until flush");
        set_thread_sink(None);
        assert!(!enabled());

        let events = sink.take_sorted();
        assert_eq!(events.len(), 4);
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            [
                "instance_start",
                "plan_cache_miss",
                "plan_built",
                "instance_end"
            ]
        );
        for e in &events {
            assert_eq!((e.job, e.stream, e.instance), (3, 1, 7));
        }
        // seq strictly increasing, timestamps monotone within the thread.
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn full_buffer_flushes_mid_stream() {
        let sink = Arc::new(BufferSink::new());
        set_thread_sink(Some(sink.clone()));
        for _ in 0..BUFFER_CAPACITY {
            emit(EventKind::PlanCacheHit);
        }
        assert_eq!(sink.len(), BUFFER_CAPACITY, "batch flushed when full");
        emit(EventKind::PlanCacheHit);
        set_thread_sink(None);
        assert_eq!(sink.len(), BUFFER_CAPACITY + 1);
    }

    #[test]
    fn phase_span_closes_on_every_exit_path() {
        fn fallible(fail: bool) -> Result<(), ()> {
            let _span = PhaseSpan::enter(Phase::Equality);
            if fail {
                return Err(());
            }
            Ok(())
        }
        let sink = Arc::new(BufferSink::new());
        set_thread_sink(Some(sink.clone()));
        fallible(false).unwrap();
        fallible(true).unwrap_err();
        set_thread_sink(None);
        let kinds: Vec<&str> = sink.take_sorted().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            ["phase_start", "phase_end", "phase_start", "phase_end"]
        );
    }

    #[test]
    fn set_job_resets_stream_and_instance() {
        let sink = Arc::new(BufferSink::new());
        set_thread_sink(Some(sink.clone()));
        set_job(1);
        set_stream(2);
        set_instance(9);
        set_job(4);
        emit(EventKind::JobStart);
        set_thread_sink(None);
        let events = sink.take_sorted();
        assert_eq!(
            (events[0].job, events[0].stream, events[0].instance),
            (4, 0, 0)
        );
    }
}
