//! Render recorded trace events as JSONL or Chrome `trace_event` JSON.
//!
//! Both writers are pure functions from an event slice to a `String`, so
//! they can be golden-file tested; all field names are static and all
//! values numeric, so no JSON string escaping is needed.
//!
//! - **JSONL** ([`to_jsonl`]): one JSON object per line, in the fixed key
//!   order `seq, ts_ns, job, stream, instance, kind` followed by the
//!   kind-specific payload (`jobs`, `phase`, `build_ns`, `new_pairs`,
//!   `node`). Grep-friendly and trivially parseable line by line.
//! - **Chrome** ([`to_chrome_trace`]): a `{"traceEvents": [...]}` document
//!   loadable in `about:tracing` or <https://ui.perfetto.dev>. Span-like
//!   events (sweep/job/instance/phase) become `B`/`E` duration pairs;
//!   point events (cache hits, dispute activity) become instant (`i`)
//!   events. The sweep job index maps to `pid` and the stream index to
//!   `tid`, so concurrent jobs render as parallel process tracks;
//!   timestamps are microseconds with the native nanosecond resolution
//!   kept in the fractional part.

use crate::trace::{Event, EventKind};
use std::fmt::Write as _;

/// Render events (in the order given; sort by `seq` first for global
/// order) as JSONL, one event object per line, trailing newline included.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        write_jsonl_event(&mut out, ev);
        out.push('\n');
    }
    out
}

/// Render one event as a single-line JSON object (no trailing newline).
pub fn event_to_jsonl(ev: &Event) -> String {
    let mut out = String::with_capacity(96);
    write_jsonl_event(&mut out, ev);
    out
}

fn write_jsonl_event(out: &mut String, ev: &Event) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"ts_ns\":{},\"job\":{},\"stream\":{},\"instance\":{},\"kind\":\"{}\"",
        ev.seq,
        ev.ts_ns,
        ev.job,
        ev.stream,
        ev.instance,
        ev.kind.name()
    );
    match ev.kind {
        EventKind::SweepStart { jobs, tier, cpu } => {
            // `tier`/`cpu` are static feature names (no escaping needed).
            let _ = write!(
                out,
                ",\"jobs\":{jobs},\"tier\":\"{tier}\",\"cpu\":\"{cpu}\""
            );
        }
        EventKind::PhaseStart(p) | EventKind::PhaseEnd(p) => {
            let _ = write!(out, ",\"phase\":\"{}\"", p.name());
        }
        EventKind::PlanBuilt { build_ns } => {
            let _ = write!(out, ",\"build_ns\":{build_ns}");
        }
        EventKind::PlanRepair { ns } | EventKind::PlanFullRecompute { ns } => {
            let _ = write!(out, ",\"ns\":{ns}");
        }
        EventKind::DisputeRaised { new_pairs } => {
            let _ = write!(out, ",\"new_pairs\":{new_pairs}");
        }
        EventKind::NodeExposed { node } => {
            let _ = write!(out, ",\"node\":{node}");
        }
        EventKind::DetSanDigest { phase, digest } => {
            let _ = write!(out, ",\"phase\":\"{}\",\"digest\":{digest}", phase.name());
        }
        _ => {}
    }
    out.push('}');
}

/// Render events as a Chrome `trace_event` JSON document. One trace event
/// per line inside the `traceEvents` array, so the output stays diffable.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        write_chrome_event(&mut out, ev);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Span name, category, and `B`/`E` phase for span-like kinds; `None` for
/// instant kinds.
fn span_parts(kind: EventKind) -> Option<(&'static str, &'static str, char)> {
    match kind {
        EventKind::SweepStart { .. } => Some(("sweep", "sweep", 'B')),
        EventKind::SweepEnd => Some(("sweep", "sweep", 'E')),
        EventKind::JobStart => Some(("job", "job", 'B')),
        EventKind::JobEnd => Some(("job", "job", 'E')),
        EventKind::InstanceStart => Some(("instance", "instance", 'B')),
        EventKind::InstanceEnd => Some(("instance", "instance", 'E')),
        EventKind::PhaseStart(p) => Some((p.name(), "phase", 'B')),
        EventKind::PhaseEnd(p) => Some((p.name(), "phase", 'E')),
        _ => None,
    }
}

fn write_chrome_event(out: &mut String, ev: &Event) {
    // Microseconds with nanosecond resolution in the fraction.
    let ts_us = ev.ts_ns as f64 / 1000.0;
    match span_parts(ev.kind) {
        Some((name, cat, ph)) => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\
                 \"pid\":{},\"tid\":{}",
                ev.job, ev.stream
            );
            match ev.kind {
                EventKind::SweepStart { jobs, tier, .. } => {
                    let _ = write!(out, ",\"args\":{{\"jobs\":{jobs},\"tier\":\"{tier}\"}}");
                }
                EventKind::InstanceStart => {
                    let _ = write!(out, ",\"args\":{{\"instance\":{}}}", ev.instance);
                }
                _ => {}
            }
            out.push('}');
        }
        None => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\
                 \"pid\":{},\"tid\":{}",
                ev.kind.name(),
                ev.job,
                ev.stream
            );
            match ev.kind {
                EventKind::PlanBuilt { build_ns } => {
                    let _ = write!(out, ",\"args\":{{\"build_ns\":{build_ns}}}");
                }
                EventKind::PlanRepair { ns } | EventKind::PlanFullRecompute { ns } => {
                    let _ = write!(out, ",\"args\":{{\"ns\":{ns}}}");
                }
                EventKind::DisputeRaised { new_pairs } => {
                    let _ = write!(out, ",\"args\":{{\"new_pairs\":{new_pairs}}}");
                }
                EventKind::NodeExposed { node } => {
                    let _ = write!(out, ",\"args\":{{\"node\":{node}}}");
                }
                EventKind::DetSanDigest { phase, digest } => {
                    let _ = write!(
                        out,
                        ",\"args\":{{\"phase\":\"{}\",\"digest\":{digest}}}",
                        phase.name()
                    );
                }
                _ => {
                    let _ = write!(out, ",\"args\":{{\"instance\":{}}}", ev.instance);
                }
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Phase;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            ts_ns: seq * 1500,
            job: 2,
            stream: 1,
            instance: 3,
            kind,
        }
    }

    #[test]
    fn jsonl_has_fixed_key_order_and_payloads() {
        let line = event_to_jsonl(&ev(5, EventKind::PhaseStart(Phase::Flags)));
        assert_eq!(
            line,
            "{\"seq\":5,\"ts_ns\":7500,\"job\":2,\"stream\":1,\"instance\":3,\
             \"kind\":\"phase_start\",\"phase\":\"flags\"}"
        );
        let line = event_to_jsonl(&ev(
            0,
            EventKind::SweepStart {
                jobs: 9,
                tier: "avx2",
                cpu: "sse2,avx2",
            },
        ));
        assert!(line.ends_with(
            "\"kind\":\"sweep_start\",\"jobs\":9,\"tier\":\"avx2\",\"cpu\":\"sse2,avx2\"}"
        ));
        let line = event_to_jsonl(&ev(1, EventKind::NodeExposed { node: 4 }));
        assert!(line.ends_with("\"kind\":\"node_exposed\",\"node\":4}"));
    }

    #[test]
    fn chrome_trace_pairs_b_and_e() {
        let events = vec![
            ev(
                0,
                EventKind::SweepStart {
                    jobs: 1,
                    tier: "portable",
                    cpu: "",
                },
            ),
            ev(1, EventKind::JobStart),
            ev(2, EventKind::InstanceStart),
            ev(3, EventKind::PhaseStart(Phase::Phase1)),
            ev(4, EventKind::PlanCacheHit),
            ev(5, EventKind::PhaseEnd(Phase::Phase1)),
            ev(6, EventKind::InstanceEnd),
            ev(7, EventKind::JobEnd),
            ev(8, EventKind::SweepEnd),
        ];
        let doc = to_chrome_trace(&events);
        assert!(doc.starts_with("{\"traceEvents\":[\n"));
        assert!(doc.trim_end().ends_with("],\"displayTimeUnit\":\"ns\"}"));
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        let instants = doc.matches("\"ph\":\"i\"").count();
        assert_eq!(begins, 4);
        assert_eq!(ends, 4);
        assert_eq!(instants, 1);
        // Microsecond timestamps with ns in the fraction.
        assert!(doc.contains("\"ts\":4.500"));
    }
}
