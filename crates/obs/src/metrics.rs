//! Counters and fixed-bucket log2 latency histograms with a deterministic,
//! commutative merge.
//!
//! # Bucket layout
//!
//! A [`Histogram`] has exactly 65 buckets. Bucket 0 holds the value `0`;
//! bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` — i.e. a value `v > 0`
//! lands in bucket `64 - v.leading_zeros()` (its bit length). The layout
//! is fixed and value-independent, so merging histograms is plain
//! element-wise addition: **commutative and associative**. That is what
//! makes per-thread recording deterministic — however a sweep's instances
//! are partitioned across worker threads, the merged histogram is
//! identical (pinned by the partition-invariance proptest in
//! `tests/histogram_props.rs`).
//!
//! Alongside the buckets the histogram keeps exact `count`, `sum`, `min`,
//! and `max`, so sum-style reporting (the legacy `wall_*_ns` fields) stays
//! exact; only the percentiles are bucket-resolution approximations
//! (within 2× of the true value, clamped to the observed `[min, max]`).

use std::collections::BTreeMap;

/// Number of histogram buckets: one for zero plus one per bit length.
pub const NUM_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram of `u64` samples (typically nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else the value's bit length.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket's value range.
    fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another histogram into this one. Element-wise bucket
    /// addition plus exact-stat combination: commutative and associative,
    /// so any partition of the same samples merges to the same result.
    pub fn merge(&mut self, other: &Histogram) {
        // DetSan: spot-check the commutativity claim above on the actual
        // operands — merge the other way around and compare.
        #[cfg(feature = "sanitize")]
        let flipped = {
            let mut f = other.clone();
            f.merge_unchecked(self);
            f
        };
        self.merge_unchecked(other);
        #[cfg(feature = "sanitize")]
        assert!(
            *self == flipped,
            "DetSan: histogram merge is not commutative for these operands"
        );
    }

    fn merge_unchecked(&mut self, other: &Histogram) {
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Approximate percentile (`p` in `[0, 100]`): the upper bound of the
    /// bucket containing the sample of rank `ceil(count · p / 100)`,
    /// clamped to the observed `[min, max]`. Returns 0 on an empty
    /// histogram. Exact for `p = 0` (min) and `p = 100` (max).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return self.min;
        }
        if p == 100.0 {
            return self.max;
        }
        let rank = ((self.count as f64) * p / 100.0).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (index 0 = zero values, index `i` = values with
    /// bit length `i`).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }
}

/// A named collection of counters and histograms with deterministic
/// (lexicographic) iteration order, so serialized metric sections have a
/// fixed schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter, creating it at 0 first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of the named counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Mutable access to the named histogram, creating it empty first.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// The named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Insert (or replace) a histogram wholesale.
    pub fn set_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_string(), histogram);
    }

    /// Merge another registry into this one: counters add, histograms
    /// merge. Commutative and associative like [`Histogram::merge`].
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Counters in lexicographic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in lexicographic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn exact_stats_and_percentile_bounds() {
        let mut h = Histogram::new();
        let samples = [0u64, 1, 5, 100, 1000, 1_000_000];
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 1_000_000);
        // Every percentile lies within [min, max] and within 2× of the
        // true order statistic's bucket.
        for p in [10.0, 50.0, 90.0, 99.0] {
            let v = h.percentile(p);
            assert!(v <= h.max());
        }
        // p50 of 6 samples is the 3rd order statistic (5): bucket upper
        // bound is 7.
        assert_eq!(h.percentile(50.0), 7);
    }

    #[test]
    fn merge_is_commutative_and_matches_single_recording() {
        let samples: Vec<u64> = (0..100).map(|i| i * i * 37 % 10_000).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let (left, right) = samples.split_at(33);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn registry_is_sorted_and_merges() {
        let mut r = Registry::new();
        r.counter_add("zeta", 2);
        r.counter_add("alpha", 1);
        r.histogram_mut("lat_b").record(10);
        r.histogram_mut("lat_a").record(20);

        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        let hnames: Vec<&str> = r.histograms().map(|(n, _)| n).collect();
        assert_eq!(hnames, ["lat_a", "lat_b"]);

        let mut other = Registry::new();
        other.counter_add("alpha", 5);
        other.histogram_mut("lat_a").record(30);
        r.merge(&other);
        assert_eq!(r.counter("alpha"), 6);
        assert_eq!(r.counter("zeta"), 2);
        assert_eq!(r.histogram("lat_a").unwrap().count(), 2);
    }
}
