//! The workspace's single wall-clock authority.
//!
//! Every monotonic-clock read in library code routes through this file,
//! which keeps the `nab-lint` NAB001 whitelist exactly one file wide:
//! any other `Instant::now()`/`SystemTime::now()` in a deterministic
//! path is a lint error. Wall time in this workspace is strictly
//! *observational* — it feeds timed JSON, traces, and perf baselines,
//! never canonical output or control flow — and funneling the reads
//! through one audited chokepoint is what makes that claim checkable.

use std::time::Instant;

/// Reads the process monotonic clock.
///
/// The only sanctioned way for library code to obtain an [`Instant`].
#[inline]
pub fn mono_now() -> Instant {
    Instant::now()
}

/// Nanoseconds elapsed since `since`, saturating into `u64`.
///
/// Companion to [`mono_now`] for the ubiquitous
/// `let t0 = mono_now(); … elapsed_ns(t0)` measurement pattern.
#[inline]
pub fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_now_is_monotonic() {
        let a = mono_now();
        let b = mono_now();
        assert!(b >= a);
    }

    #[test]
    fn elapsed_ns_is_nonnegative_and_grows() {
        let t0 = mono_now();
        let first = elapsed_ns(t0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let second = elapsed_ns(t0);
        assert!(second > first);
    }
}
