//! Observability layer for the NAB reproduction: structured event tracing,
//! a metrics registry, and latency-distribution histograms.
//!
//! The crate has **zero dependencies** (not even on the rest of the
//! workspace) so every other crate can depend on it, and it is built around
//! one invariant: *with no sink installed, instrumentation is a no-op* —
//! canonical `SweepReport` JSON and the determinism property tests are
//! byte-identical whether tracing is compiled in, enabled, or absent.
//!
//! Three modules:
//!
//! - [`trace`] — a structured event stream. Instrumented code calls
//!   [`trace::emit`] (or takes a [`trace::PhaseSpan`] /
//!   [`trace::InstanceSpan`] guard) with a [`trace::EventKind`]; events are
//!   `Copy`, carry a global sequence number and a monotonic nanosecond
//!   timestamp captured once per event, and are buffered in a preallocated
//!   thread-local `Vec` that is flushed to the installed [`trace::TraceSink`]
//!   in batches. Sinks are installed *per thread*
//!   ([`trace::set_thread_sink`]), which keeps parallel tests in one binary
//!   from polluting each other; the sweep runner installs the sink on each
//!   worker thread it spawns.
//! - [`metrics`] — [`metrics::Histogram`], a fixed 65-bucket log2 latency
//!   histogram with exact `count`/`sum`/`min`/`max` and p50/p90/p99
//!   extraction, whose merge is commutative and associative (so per-thread
//!   histograms merge to the same result for any work partition), plus a
//!   [`metrics::Registry`] of named counters and histograms with
//!   deterministic (sorted) iteration order.
//! - [`writer`] — renderers from a recorded event slice to JSONL (one JSON
//!   object per line) and to Chrome `trace_event` JSON loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! See `docs/observability.md` for the event taxonomy and usage.

pub mod clock;
pub mod metrics;
pub mod trace;
pub mod writer;

pub use metrics::{Histogram, Registry};
pub use trace::{
    emit, set_thread_sink, BufferSink, Event, EventKind, InstanceSpan, NullSink, Phase, PhaseSpan,
    TraceSink,
};
