//! Umbrella crate for the NAB reproduction workspace.
//!
//! Re-exports the component crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real APIs:
//!
//! - [`gf`] — finite fields `GF(2^m)` and dense linear algebra,
//! - [`netgraph`] — capacitated digraphs, flows, and tree packings,
//! - [`sim`] — the synchronous capacitated network simulator,
//! - [`bb`] — classic Byzantine-broadcast primitives and baselines,
//! - [`nab`] — the Network-Aware Byzantine broadcast algorithm itself,
//! - [`net`] — the deterministic discrete-event network kernel
//!   (latency/jitter/loss link models; see `docs/network-sim.md`),
//! - [`obs`] — structured event tracing and metrics (see
//!   `docs/observability.md`),
//! - [`scenario`] — declarative fault/workload scenarios and the parallel
//!   sweep runner (see `docs/scenarios.md`).

pub use nab;
pub use nab_bb as bb;
pub use nab_gf as gf;
pub use nab_net as net;
pub use nab_netgraph as netgraph;
pub use nab_obs as obs;
pub use nab_scenario as scenario;
pub use nab_sim as sim;
