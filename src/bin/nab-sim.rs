//! `nab-sim` — run NAB simulations from the command line.
//!
//! Two modes:
//!
//! - **Single run** (default): one topology, one fault set, one adversary,
//!   `Q` instances; prints throughput and dispute state.
//!
//!   ```text
//!   nab-sim --topology complete:5:2 --f 1 --symbols 64 --q 10 \
//!           --faulty 2 --adversary corruptor --broadcast eig --bounds
//!   ```
//!
//! - **Scenario sweep**: a declarative `.scenario` file expanded into a
//!   parameter grid and run across worker threads (see `docs/scenarios.md`
//!   and the bundled `scenarios/` library).
//!
//!   ```text
//!   nab-sim --scenario scenarios/fig1a.scenario --threads 4 --json -
//!   ```
//!
//! - **Validate**: parse a `.scenario` file and *plan* every grid point
//!   (topology realization, γ/ρ, arborescence packing, routing tables)
//!   without executing a single instance.
//!
//!   ```text
//!   nab-sim --validate scenarios/scale-grid.scenario
//!   ```

use std::collections::BTreeSet;
use std::io::IsTerminal;
use std::process::ExitCode;
use std::sync::Arc;

use nab_repro::nab::bounds::bounds_report;
use nab_repro::nab::engine::{run_many, NabConfig, NabEngine};
use nab_repro::nab::plan::PlanCache;
use nab_repro::nab::BroadcastKind;
use nab_repro::netgraph::DiGraph;
use nab_repro::obs::trace::TraceSink;
use nab_repro::obs::{writer, BufferSink};
use nab_repro::scenario::topology::ResolveCtx;
use nab_repro::scenario::{self, AdversarySpec, ProgressSnapshot, SweepOptions, TopologyTemplate};

const HELP: &str =
    "nab-sim — Network-Aware Byzantine broadcast simulator (Liang & Vaidya, PODC 2012)

USAGE:
    nab-sim [OPTIONS]                         single run
    nab-sim --scenario FILE [OPTIONS]         declarative sweep
    nab-sim --validate FILE                   plan a scenario, don't run it

Flags are mode-exclusive: scenario sweeps take their parameters from the
.scenario file, so single-run flags error under --scenario (and vice versa).

SCENARIO MODE:
    --scenario FILE     run a .scenario file (see docs/scenarios.md)
    --threads N         worker threads for the sweep (0 = one per CPU;
                        overrides the file's `threads` key)
    --net               execute message-level over the nab-net event
                        kernel: phase durations come from simulated
                        latency/jitter/loss on every link (the file's
                        `link_model` key; see docs/network-sim.md).
                        Overrides the file's `net` key to on
    --no-batch          disable the batched cross-stream execution path
                        (one slab multiply per edge for all undisputed
                        streams' equality columns); results are
                        byte-identical either way (see docs/perf.md).
                        Overrides the file's `batch` key to off
    --no-repair         disable incremental plan repair: every dispute
                        replans G_k from scratch instead of repairing the
                        previous plan; results are byte-identical either
                        way (see docs/plan-cache.md). Overrides the
                        file's `plan_repair` key to off
    --plan-cache-dir D  persist network plans under directory D,
                        content-addressed by canonical digest; later runs
                        over the same networks load plans from disk
                        instead of rebuilding them. Results are
                        byte-identical with or without the directory
                        (see docs/plan-cache.md)
    --json PATH         write the full sweep report as JSON (- = stdout)
    --timings           include measured wall-clock wall_*_ns, plan-cache,
                        latency-percentile, and metrics fields in the JSON
                        report (requires --json; omitted by default so
                        identical sweeps serialize byte-identically — see
                        docs/perf.md)
    --trace PATH        write a structured event trace of the sweep to PATH
                        (- = stdout). Default format is JSONL: one event
                        object per line, covering sweep/job/instance/phase
                        spans plus plan-cache and dispute events (see
                        docs/observability.md)
    --trace-format FMT  jsonl (default) | chrome. chrome emits a Chrome
                        trace_event file loadable in about:tracing or
                        Perfetto (requires --trace)
    --progress          live sweep progress on stderr after every finished
                        job: jobs done/total, instances/sec, dispute
                        rounds, plan-cache hit rate

VALIDATE MODE:
    --validate FILE     parse FILE and build every grid point's network
                        plan (validation, γ/ρ, arborescence packing,
                        routing tables) without executing instances.
                        Exit codes: 0 = every grid point plans, 1 = the
                        file cannot be read/parsed, 2 = some grid points
                        fail planning (each failure is reported)

SINGLE-RUN MODE:
    --topology SPEC     topology (default complete:4:2). Families:
                          complete:N:CAP      hetero:N:LO:HI
                          ring:N:CAP          barbell:HALF:CAP:BRIDGES:BCAP
                          circulant:N:M:CAP   kconnected:N:K:MAXCAP:EXTRA%
                          fig1a | fig1b | fig2a | fig2a-closed
                        (the figure graphs are too sparse for f ≥ 1; run
                        them with --f 0, and use fig2a-closed for fig2a —
                        the raw figure has no return path to the source)
    --f F               fault bound (default 1)
    --symbols S         input size in 16-bit symbols (default 64)
    --q Q               broadcast instances (default 10)
    --faulty IDS        comma-separated ground-truth faulty node ids
    --adversary SPEC    honest | corruptor | liar | false-alarm | equivocate
                        | garbler | random:P | collude:SCAPEGOAT:CORRUPTOR
    --broadcast KIND    eig | phase-king (default eig)
    --seed SEED         base RNG seed (default 7)
    --bounds            also print the paper's Eq.6/Theorem-2 bounds

GENERAL:
    -h, --help          show this help
";

/// Serialization for `--trace` output.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

struct Args {
    scenario: Option<String>,
    validate: Option<String>,
    threads: Option<usize>,
    json: Option<String>,
    timings: bool,
    trace: Option<String>,
    trace_format: Option<TraceFormat>,
    progress: bool,
    net: bool,
    no_batch: bool,
    no_repair: bool,
    plan_cache_dir: Option<String>,
    topology: String,
    f: usize,
    symbols: usize,
    q: usize,
    faulty: BTreeSet<usize>,
    adversary: String,
    broadcast: BroadcastKind,
    seed: u64,
    show_bounds: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        scenario: None,
        validate: None,
        threads: None,
        json: None,
        timings: false,
        trace: None,
        trace_format: None,
        progress: false,
        net: false,
        no_batch: false,
        no_repair: false,
        plan_cache_dir: None,
        topology: "complete:4:2".into(),
        f: 1,
        symbols: 64,
        q: 10,
        faulty: BTreeSet::new(),
        adversary: "honest".into(),
        broadcast: BroadcastKind::Eig,
        seed: 7,
        show_bounds: false,
    };
    // Flags only meaningful in one of the two modes, tracked so an
    // inapplicable flag errors instead of being silently ignored.
    const SINGLE_ONLY: [&str; 9] = [
        "--topology",
        "--f",
        "--symbols",
        "--q",
        "--seed",
        "--faulty",
        "--adversary",
        "--broadcast",
        "--bounds",
    ];
    const SCENARIO_ONLY: [&str; 10] = [
        "--threads",
        "--json",
        "--timings",
        "--trace",
        "--trace-format",
        "--progress",
        "--net",
        "--no-batch",
        "--no-repair",
        "--plan-cache-dir",
    ];
    let mut single_flags: Vec<&'static str> = Vec::new();
    let mut scenario_flags: Vec<&'static str> = Vec::new();
    let mut seen_flags: Vec<String> = Vec::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        if let Some(&flag) = SINGLE_ONLY.iter().find(|&&f| f == argv[i]) {
            single_flags.push(flag);
        }
        if let Some(&flag) = SCENARIO_ONLY.iter().find(|&&f| f == argv[i]) {
            scenario_flags.push(flag);
        }
        // Repeated flags are last-wins in naive parsers; reject them like
        // the .scenario format rejects duplicate keys.
        if argv[i].starts_with("--") && seen_flags.contains(&argv[i]) {
            return Err(format!(
                "duplicate flag {} (pass each flag at most once; \
                 --faulty takes a comma-separated list)",
                argv[i]
            ));
        }
        seen_flags.push(argv[i].clone());
        match argv[i].as_str() {
            "--scenario" => args.scenario = Some(take(&mut i)?),
            "--validate" => args.validate = Some(take(&mut i)?),
            "--threads" => {
                args.threads = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--json" => args.json = Some(take(&mut i)?),
            "--timings" => args.timings = true,
            "--trace" => args.trace = Some(take(&mut i)?),
            "--trace-format" => {
                args.trace_format = Some(match take(&mut i)?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        return Err(format!(
                            "unknown trace format {other:?} (known: jsonl, chrome)"
                        ))
                    }
                })
            }
            "--progress" => args.progress = true,
            "--net" => args.net = true,
            "--no-batch" => args.no_batch = true,
            "--no-repair" => args.no_repair = true,
            "--plan-cache-dir" => args.plan_cache_dir = Some(take(&mut i)?),
            "--topology" => args.topology = take(&mut i)?,
            "--f" => args.f = take(&mut i)?.parse().map_err(|e| format!("--f: {e}"))?,
            "--symbols" => {
                args.symbols = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--symbols: {e}"))?
            }
            "--q" => args.q = take(&mut i)?.parse().map_err(|e| format!("--q: {e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faulty" => {
                for part in take(&mut i)?.split(',') {
                    args.faulty
                        .insert(part.trim().parse().map_err(|e| format!("--faulty: {e}"))?);
                }
            }
            "--adversary" => args.adversary = take(&mut i)?,
            "--broadcast" => {
                args.broadcast = match take(&mut i)?.as_str() {
                    "eig" => BroadcastKind::Eig,
                    "phase-king" => BroadcastKind::PhaseKing,
                    other => {
                        return Err(format!(
                            "unknown broadcast kind {other:?} (known: eig, phase-king)"
                        ))
                    }
                }
            }
            "--bounds" => args.show_bounds = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    if args.validate.is_some() {
        if args.scenario.is_some() {
            return Err("--validate and --scenario are mutually exclusive".into());
        }
        if let Some(&flag) = single_flags.first().or(scenario_flags.first()) {
            return Err(format!(
                "{flag} does not apply to --validate (validation only parses and plans)"
            ));
        }
    } else if args.scenario.is_some() {
        if let Some(flag) = single_flags.first() {
            return Err(format!(
                "{flag} applies to single-run mode only; with --scenario, set it in the \
                 .scenario file instead"
            ));
        }
    } else if let Some(flag) = scenario_flags.first() {
        return Err(format!("{flag} requires --scenario"));
    }
    Ok(Some(args))
}

/// Builds a single-run topology. Grid variables (`$n`, `$cap`, `$f`,
/// `2f+1`) only mean something inside a `.scenario` sweep, so they are
/// rejected here rather than silently resolved to defaults.
fn build_topology(spec: &str, f: usize, seed: u64) -> Result<DiGraph, String> {
    if spec.contains('$') || spec.contains("2f+1") {
        return Err(format!(
            "topology {spec:?} uses grid variables ($n, $cap, $f, 2f+1), which only exist \
             in .scenario sweeps; use literal values in single-run mode"
        ));
    }
    let template = TopologyTemplate::parse(spec)?;
    // With no variables left, the resolve context values are never read.
    template.build(&ResolveCtx {
        n: 0,
        cap: 0,
        f,
        seed,
    })
}

/// Validate mode: parse the scenario and *plan* every grid point through
/// the planning layer — topology realization, the paper's feasibility
/// conditions, γ/ρ, arborescence packing, routing tables — without
/// executing any broadcast instance. Duplicate networks across the grid
/// plan once (the same `PlanCache` the sweep runner uses).
///
/// Exit codes: 0 = every grid point plans; 2 = some grid points fail
/// (reported per job); parse/read failures surface as `Err` → exit 1.
fn run_validate_mode(args: &Args) -> Result<ExitCode, String> {
    let path = args.validate.as_deref().expect("validate mode");
    let spec = scenario::load(path).map_err(|e| format!("{path}: {e}"))?;
    let jobs = scenario::expand_jobs(&spec);
    let cache = PlanCache::new();
    let mut failed = 0usize;
    for job in &jobs {
        let ctx = ResolveCtx {
            n: job.n,
            cap: job.cap,
            f: job.f,
            seed: job.seed,
        };
        let planned = spec
            .topology
            .build(&ctx)
            .map_err(|e| format!("topology rejected: {e}"))
            .and_then(|g| {
                cache
                    .fetch(&g, job.f)
                    .map_err(|e| format!("network rejected: {e}"))
            });
        match planned {
            Ok(fetch) => {
                let p = &fetch.plan;
                println!(
                    "job {:>3}: n={} cap={} f={} → plan ok: gamma={} rho={} trees={} \
                     router-copies={}{}",
                    job.index,
                    job.n,
                    job.cap,
                    job.f,
                    p.gamma0(),
                    p.rho0(),
                    p.trees0().len(),
                    p.router().copies(),
                    if fetch.hit { " (cached)" } else { "" },
                );
            }
            Err(e) => {
                failed += 1;
                println!(
                    "job {:>3}: n={} cap={} f={} → FAIL: {e}",
                    job.index, job.n, job.cap, job.f
                );
            }
        }
    }
    let stats = cache.stats();
    println!(
        "validated {:?}: {} grid points, {} plan ok, {} failed ({} unique plans built)",
        spec.name,
        jobs.len(),
        jobs.len() - failed,
        failed,
        stats.misses,
    );
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Renders one `--progress` update. Separated from the I/O so the format
/// stays testable in spirit: cumulative jobs, instance rate, disputes,
/// and plan-cache hit rate.
fn progress_line(s: &ProgressSnapshot, elapsed_secs: f64) -> String {
    let rate = s.instances as f64 / elapsed_secs.max(1e-9);
    let lookups = s.plan_hits + s.plan_misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        100.0 * s.plan_hits as f64 / lookups as f64
    };
    let mut line = format!(
        "jobs {}/{} | {rate:.0} inst/s | disputes {} | cache hits {hit_rate:.0}%",
        s.jobs_done, s.jobs_total, s.dispute_rounds
    );
    if s.rejected > 0 {
        line.push_str(&format!(" | rejected {}", s.rejected));
    }
    line
}

fn run_scenario_mode(args: &Args) -> Result<ExitCode, String> {
    let path = args.scenario.as_deref().expect("scenario mode");
    if args.timings && args.json.is_none() {
        return Err(
            "--timings adds wall_*_ns fields to the JSON report; pass --json PATH (or --json -) \
             to receive it"
                .into(),
        );
    }
    if args.trace_format.is_some() && args.trace.is_none() {
        return Err(
            "--trace-format selects the --trace serialization; pass --trace PATH (or --trace -) \
             to receive it"
                .into(),
        );
    }
    let json_on_stdout = args.json.as_deref() == Some("-");
    let trace_on_stdout = args.trace.as_deref() == Some("-");
    if json_on_stdout && trace_on_stdout {
        return Err(
            "--json - and --trace - both claim stdout; write at least one of them to a file".into(),
        );
    }
    let mut spec = scenario::load(path).map_err(|e| format!("{path}: {e}"))?;
    if args.net {
        spec.net = true;
    }
    if args.no_batch {
        spec.batch = false;
    }
    if args.no_repair {
        spec.plan_repair = false;
    }
    // The disk tier lives behind a sweep-external cache so plans persist
    // past this process; results stay byte-identical regardless (plans
    // are content-addressed and verified on load).
    let disk_cache = args.plan_cache_dir.as_deref().map(PlanCache::with_dir);
    let threads = args.threads.unwrap_or(spec.threads);
    eprintln!(
        "scenario {:?}: {} jobs (topology {}, adversary {}, faults {}{})",
        spec.name,
        spec.job_count(),
        spec.topology.spec_string(),
        spec.adversary.spec_string(),
        spec.faults.spec_string(),
        if spec.net {
            format!(", net {}", spec.link_model.spec_string())
        } else {
            String::new()
        },
    );
    if spec.job_count() == 0 {
        eprintln!(
            "warning: scenario {:?} expands to an empty grid (an axis or `seeds` is 0); \
             nothing to run",
            spec.name
        );
        return Ok(ExitCode::from(2));
    }

    // Observability hooks: an in-memory trace sink drained to --trace
    // after the sweep, and a live --progress reporter on stderr (carriage-
    // return rewrite on a tty, one line per finished job otherwise).
    let sink = args.trace.as_ref().map(|_| Arc::new(BufferSink::new()));
    let started = nab_obs::clock::mono_now();
    let stderr_tty = std::io::stderr().is_terminal();
    let report_progress = move |s: ProgressSnapshot| {
        let line = progress_line(&s, started.elapsed().as_secs_f64());
        if stderr_tty {
            eprint!("\r{line}\x1b[K");
        } else {
            eprintln!("{line}");
        }
    };
    let opts = SweepOptions {
        threads,
        cache: disk_cache.as_ref(),
        trace: sink.clone().map(|s| s as Arc<dyn TraceSink>),
        progress: if args.progress {
            Some(&report_progress)
        } else {
            None
        },
    };
    let report = scenario::run_sweep_with_options(&spec, &opts)?;
    if args.progress && stderr_tty {
        eprintln!();
    }
    if let Some(cache) = disk_cache.as_ref() {
        let s = cache.stats();
        eprintln!(
            "plan cache dir {:?}: {} loaded from disk, {} stored, {} rejected",
            args.plan_cache_dir.as_deref().unwrap_or("-"),
            s.disk_hits,
            s.disk_stores,
            s.disk_rejects,
        );
    }
    // With `--json -` (or `--trace -`) stdout must carry pure
    // machine-readable output (pipeable to jq), so the human-readable
    // summary moves to stderr.
    let stdout_claimed = json_on_stdout || trace_on_stdout;
    let a = &report.aggregate;
    let summary = format!(
        "{}jobs: {} ok, {} rejected | instances: {} | mean throughput: {:.3} \
         (min {:.3}, max {:.3})\n\
         disputes: {} total (max {}/job, budget violated: {}) | exposures: {} | all correct: {}\n",
        report.summary_table(),
        a.ok_jobs,
        a.rejected_jobs,
        a.total_instances,
        a.mean_throughput,
        a.min_throughput,
        a.max_throughput,
        a.total_dispute_rounds,
        a.max_dispute_rounds,
        a.dispute_budget_violated,
        a.exposed_nodes,
        a.all_correct
    );
    // Serialize only when --json asked for output.
    let render = |report: &scenario::SweepReport| {
        if args.timings {
            report.to_json_pretty_timed()
        } else {
            report.to_json_pretty()
        }
    };
    if stdout_claimed {
        eprint!("{summary}");
    } else {
        print!("{summary}");
    }
    if json_on_stdout {
        print!("{}", render(&report));
    } else if let Some(path) = args.json.as_deref() {
        std::fs::write(path, render(&report)).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    if let Some(sink) = sink {
        let events = sink.take_sorted();
        let rendered = match args.trace_format.unwrap_or(TraceFormat::Jsonl) {
            TraceFormat::Jsonl => writer::to_jsonl(&events),
            TraceFormat::Chrome => writer::to_chrome_trace(&events),
        };
        if trace_on_stdout {
            print!("{rendered}");
        } else {
            let path = args.trace.as_deref().expect("sink implies --trace");
            std::fs::write(path, rendered).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        }
    }
    Ok(if a.all_correct && !a.dispute_budget_violated {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn run_single_mode(args: &Args) -> Result<ExitCode, String> {
    let g = build_topology(&args.topology, args.f, args.seed)?;
    println!(
        "network: {} ({} nodes, {} links, total capacity {})",
        args.topology,
        g.active_count(),
        g.edge_count(),
        g.total_capacity()
    );

    if args.show_bounds {
        match bounds_report(&g, 0, args.f, 1 << 18) {
            Some(r) => {
                println!(
                    "bounds: γ1={} γ*={}{} U1={} ρ*={}  Eq.6 lower={:.2}  Thm2 upper={}  fraction={:.3}",
                    r.gamma1,
                    r.gamma_star.value,
                    if r.gamma_star.exact { "" } else { " (approx)" },
                    r.u1,
                    r.rho_star,
                    r.tnab_lower,
                    r.capacity_upper,
                    r.guaranteed_fraction
                );
            }
            None => println!("bounds: undefined (U_1 < 2)"),
        }
    }

    let cfg = NabConfig {
        f: args.f,
        symbols: args.symbols,
        seed: args.seed,
    };
    let mut engine = NabEngine::new(g, cfg).map_err(|e| format!("network rejected: {e}"))?;
    engine.set_broadcast_kind(args.broadcast);

    if args.faulty.len() > args.f {
        return Err(format!(
            "--faulty names {} nodes but --f is {}",
            args.faulty.len(),
            args.f
        ));
    }
    let n = engine.original_graph().node_count();
    if let Some(&bad) = args.faulty.iter().find(|&&v| v >= n) {
        return Err(format!(
            "--faulty names node {bad}, but the network only has nodes 0..{n}"
        ));
    }
    let adv_spec = AdversarySpec::parse(&args.adversary)?;
    adv_spec.validate_for(n, &args.faulty)?;
    let mut adv = adv_spec.build(args.seed);

    let sum = run_many(&mut engine, args.q, &args.faulty, adv.as_mut(), args.seed)
        .map_err(|e| e.to_string())?;
    println!(
        "ran {} instances of {} bits: total time {:.1}, throughput {:.3} bits/unit",
        sum.instances,
        args.symbols * 16,
        sum.total_time,
        sum.throughput
    );
    println!(
        "dispute rounds: {}  disputes: {:?}  removed: {:?}",
        sum.dispute_rounds,
        engine.disputes().pairs,
        engine.disputes().removed
    );
    println!(
        "correctness (agreement + validity in every instance): {}",
        sum.all_correct
    );
    Ok(if sum.all_correct {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.validate.is_some() {
        run_validate_mode(&args)
    } else if args.scenario.is_some() {
        run_scenario_mode(&args)
    } else {
        run_single_mode(&args)
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
