//! `nab-sim` — run NAB simulations from the command line.
//!
//! ```text
//! cargo run --release --bin nab-sim -- \
//!     --topology complete:5:2 --f 1 --symbols 64 --q 10 \
//!     --faulty 2 --adversary corruptor --broadcast eig --bounds
//! ```
//!
//! Topologies: `complete:N:CAP`, `hetero:N:LO:HI`, `barbell:HALF:CAP:BRIDGES:BCAP`,
//! `ring:N:CAP`, `fig1a`, `fig2a`.
//! Adversaries: `honest`, `corruptor`, `liar`, `false-alarm`, `equivocate`,
//! `garbler`, `random:P`.

use std::collections::BTreeSet;
use std::process::ExitCode;

use nab_repro::nab::adversary::{
    EqualityGarbler, EquivocatingSource, FalseAlarm, HonestStrategy, LyingCorruptor, NabAdversary,
    RandomStrategy, TruthfulCorruptor,
};
use nab_repro::nab::bounds::bounds_report;
use nab_repro::nab::engine::{run_many, NabConfig, NabEngine};
use nab_repro::nab::BroadcastKind;
use nab_repro::netgraph::{gen, DiGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    topology: String,
    f: usize,
    symbols: usize,
    q: usize,
    faulty: BTreeSet<usize>,
    adversary: String,
    broadcast: BroadcastKind,
    seed: u64,
    show_bounds: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        topology: "complete:4:2".into(),
        f: 1,
        symbols: 64,
        q: 10,
        faulty: BTreeSet::new(),
        adversary: "honest".into(),
        broadcast: BroadcastKind::Eig,
        seed: 7,
        show_bounds: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--topology" => args.topology = take(&mut i)?,
            "--f" => args.f = take(&mut i)?.parse().map_err(|e| format!("--f: {e}"))?,
            "--symbols" => {
                args.symbols = take(&mut i)?.parse().map_err(|e| format!("--symbols: {e}"))?
            }
            "--q" => args.q = take(&mut i)?.parse().map_err(|e| format!("--q: {e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faulty" => {
                for part in take(&mut i)?.split(',') {
                    args.faulty
                        .insert(part.trim().parse().map_err(|e| format!("--faulty: {e}"))?);
                }
            }
            "--adversary" => args.adversary = take(&mut i)?,
            "--broadcast" => {
                args.broadcast = match take(&mut i)?.as_str() {
                    "eig" => BroadcastKind::Eig,
                    "phase-king" => BroadcastKind::PhaseKing,
                    other => return Err(format!("unknown broadcast kind {other}")),
                }
            }
            "--bounds" => args.show_bounds = true,
            "--help" | "-h" => {
                println!("see module docs: cargo doc --bin nab-sim");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn build_topology(spec: &str, seed: u64) -> Result<DiGraph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<u64, String> { s.parse().map_err(|e| format!("{spec}: {e}")) };
    match parts[0] {
        "complete" if parts.len() == 3 => {
            Ok(gen::complete(num(parts[1])? as usize, num(parts[2])?))
        }
        "hetero" if parts.len() == 4 => {
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(gen::complete_heterogeneous(
                num(parts[1])? as usize,
                num(parts[2])?,
                num(parts[3])?,
                &mut rng,
            ))
        }
        "barbell" if parts.len() == 5 => Ok(gen::barbell(
            num(parts[1])? as usize,
            num(parts[2])?,
            num(parts[3])? as usize,
            num(parts[4])?,
        )),
        "ring" if parts.len() == 3 => Ok(gen::ring(num(parts[1])? as usize, num(parts[2])?)),
        "fig1a" => Ok(gen::figure_1a()),
        "fig2a" => Ok(gen::figure_2a()),
        _ => Err(format!("unrecognized topology spec: {spec}")),
    }
}

fn build_adversary(spec: &str) -> Result<Box<dyn NabAdversary>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    Ok(match parts[0] {
        "honest" => Box::new(HonestStrategy),
        "corruptor" => Box::new(TruthfulCorruptor),
        "liar" => Box::new(LyingCorruptor),
        "false-alarm" => Box::new(FalseAlarm),
        "equivocate" => Box::new(EquivocatingSource),
        "garbler" => Box::new(EqualityGarbler),
        "random" => {
            let p: f64 = parts
                .get(1)
                .unwrap_or(&"0.5")
                .parse()
                .map_err(|e| format!("random:P — {e}"))?;
            Box::new(RandomStrategy::new(1, p))
        }
        other => return Err(format!("unknown adversary {other}")),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = match build_topology(&args.topology, args.seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "network: {} ({} nodes, {} links, total capacity {})",
        args.topology,
        g.active_count(),
        g.edge_count(),
        g.total_capacity()
    );

    if args.show_bounds {
        match bounds_report(&g, 0, args.f, 1 << 18) {
            Some(r) => {
                println!(
                    "bounds: γ1={} γ*={}{} U1={} ρ*={}  Eq.6 lower={:.2}  Thm2 upper={}  fraction={:.3}",
                    r.gamma1,
                    r.gamma_star.value,
                    if r.gamma_star.exact { "" } else { " (approx)" },
                    r.u1,
                    r.rho_star,
                    r.tnab_lower,
                    r.capacity_upper,
                    r.guaranteed_fraction
                );
            }
            None => println!("bounds: undefined (U_1 < 2)"),
        }
    }

    let cfg = NabConfig {
        f: args.f,
        symbols: args.symbols,
        seed: args.seed,
    };
    let mut engine = match NabEngine::new(g, cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: network rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    engine.set_broadcast_kind(args.broadcast);

    let mut adv = match build_adversary(&args.adversary) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match run_many(&mut engine, args.q, &args.faulty, adv.as_mut(), args.seed) {
        Ok(sum) => {
            println!(
                "ran {} instances of {} bits: total time {:.1}, throughput {:.3} bits/unit",
                sum.instances,
                args.symbols * 16,
                sum.total_time,
                sum.throughput
            );
            println!(
                "dispute rounds: {}  disputes: {:?}  removed: {:?}",
                sum.dispute_rounds,
                engine.disputes().pairs,
                engine.disputes().removed
            );
            println!(
                "correctness (agreement + validity in every instance): {}",
                sum.all_correct
            );
            if sum.all_correct {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
