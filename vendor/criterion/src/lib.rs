//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! `sample_size` / `finish`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It runs each benchmark for a small fixed number of timed iterations and
//! prints a median per-iteration time — enough to compare orders of
//! magnitude and to keep bench targets compiling and runnable, without
//! upstream's statistical machinery.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized (accepted for API compatibility; the
/// shim treats all variants identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-sample duration, filled by `iter`/`iter_batched`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        self.record(times);
    }

    /// Times `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.measured = times.get(times.len() / 2).copied();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some(d) => println!("{}/{:<28} {:>12.3?}/iter", self.name, id, d),
            None => println!("{}/{:<28} (no samples)", self.name, id),
        }
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI args for API compatibility (ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut setups = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |_| (), BatchSize::SmallInput)
        });
        assert_eq!(setups, 3);
        group.finish();
    }
}
