//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, `any::<T>()`, numeric-range and tuple strategies,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic across runs) and failing cases are **not shrunk** — the
//! panic message reports the case number instead. Assertion semantics are
//! identical (`prop_assert*` fails the test exactly like `assert*`).

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-domain strategy per type.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Size specification for [`vec`]: an exact length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration and the deterministic case RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast on small
            // CI machines while still exercising the space. Tests that
            // need more ask via `with_cases`.
            ProptestConfig { cases: 64 }
        }
    }

    /// Builds the deterministic RNG for one test case.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(0xA076_1D64_78BD_642Fu64 ^ ((case as u64) << 1))
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(__case);
                // The body runs in a Result context so `return Ok(())`
                // early-exits a single case, as in upstream proptest.
                let mut __body = || -> ::std::result::Result<(), ::std::string::String> {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                    Ok(())
                };
                if let Err(__e) = __body() {
                    panic!("proptest case {__case} failed: {__e}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        any::<u64>().prop_map(|x| x & !1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 4usize..8, x in 1u64..=5, p in 0.25f64..0.75) {
            prop_assert!((4..8).contains(&n));
            prop_assert!((1..=5).contains(&x));
            prop_assert!((0.25..0.75).contains(&p));
        }

        #[test]
        fn mapped_strategy_applies(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec(any::<u8>(), 3..6),
            w in crate::collection::vec(any::<u8>(), 4),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn tuples_generate(t in (0usize..4, 0usize..4)) {
            prop_assert!(t.0 < 4 && t.1 < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map(|c| Strategy::generate(&(0u64..1000), &mut crate::test_runner::case_rng(c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| Strategy::generate(&(0u64..1000), &mut crate::test_runner::case_rng(c)))
            .collect();
        assert_eq!(a, b);
    }
}
