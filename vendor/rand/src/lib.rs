//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the `rand` 0.8
//! API the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and of ample quality for simulations and property tests. It is
//! **not** the same stream as upstream `StdRng` (ChaCha12) and is not
//! cryptographically secure; nothing in this workspace requires either.

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the subset of upstream's trait we need).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits — the
/// stand-in for upstream's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // wrapping_add: for signed types the offset cast can be
                // negative on wide ranges; two's-complement wrap lands on
                // the mathematically correct value.
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `0..span` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A deterministic "thread rng" (doc examples only; this workspace seeds
/// every real generator explicitly).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x853C_49E6_748F_EA9B)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let z: u64 = r.gen_range(1..=0xFFFF);
            assert!((1..=0xFFFF).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value_in_small_range() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(21);
        for _ in 0..1000 {
            let x: i32 = r.gen_range(i32::MIN..i32::MAX);
            assert!(x < i32::MAX);
            let y: i64 = r.gen_range(i64::MIN..=i64::MAX);
            let _ = y; // full domain: any value is in range
            let z: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.gen_range(5..5);
    }
}
