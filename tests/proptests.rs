//! Property-based integration tests: BB safety properties under random
//! networks, random faulty sets, and randomized adversaries.

use std::collections::BTreeSet;

use nab_repro::nab::adversary::RandomStrategy;
use nab_repro::nab::engine::{NabConfig, NabEngine, SOURCE};
use nab_repro::nab::Value;
use nab_repro::netgraph::gen;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On K4/K5 with one random faulty node and a fully random adversary,
    /// every instance satisfies agreement; validity holds when the source
    /// is fault-free; only faulty nodes ever get excluded.
    #[test]
    fn random_adversary_never_breaks_bb(
        n in 4usize..6,
        cap in 1u64..4,
        bad in 0usize..5,
        adv_seed in any::<u64>(),
        p in 0.1f64..1.0,
        input_seed in any::<u64>(),
    ) {
        let bad = bad % n;
        let g = gen::complete(n, cap);
        let cfg = NabConfig { f: 1, symbols: 12, seed: 42 };
        let mut engine = NabEngine::new(g, cfg).unwrap();
        let faulty = BTreeSet::from([bad]);
        let mut adv = RandomStrategy::new(adv_seed, p);
        let mut rng = StdRng::seed_from_u64(input_seed);

        for _ in 0..3 {
            let input = Value::random(12, &mut rng);
            let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();

            let honest: Vec<&Value> = rep
                .outputs
                .iter()
                .filter(|(v, _)| !faulty.contains(v))
                .map(|(_, o)| o)
                .collect();
            for w in honest.windows(2) {
                prop_assert_eq!(w[0], w[1], "agreement");
            }
            if bad != SOURCE && !rep.defaulted {
                prop_assert_eq!(honest[0], &input, "validity");
            }
        }
        for removed in &engine.disputes().removed {
            prop_assert!(faulty.contains(removed), "removed an honest node");
        }
        for &(a, b) in &engine.disputes().pairs {
            prop_assert!(faulty.contains(&a) || faulty.contains(&b));
        }
    }

    /// Random heterogeneous networks: the bounds pipeline (γ*, ρ*, Eq. 6,
    /// Theorem 2) is internally consistent and Theorem 3's fraction holds.
    #[test]
    fn bounds_consistent_on_random_networks(seed in any::<u64>()) {
        let mut grng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(5, 0.7, 4, &mut grng);
        if let Some(rep) = nab_repro::nab::bounds::bounds_report(&g, 0, 1, 1 << 16) {
            prop_assert!(rep.gamma_star.value <= rep.gamma1);
            prop_assert!(rep.rho_star == rep.u1 / 2);
            prop_assert!(rep.tnab_lower <= rep.capacity_upper as f64 + 1e-9);
            if rep.gamma_star.exact {
                prop_assert!(rep.guaranteed_fraction >= 1.0 / 3.0 - 1e-9);
            }
        }
    }

    /// Phase-1 value corruption by a random adversary is always either
    /// absent or detected by the equality check + flag agreement.
    #[test]
    fn corruption_implies_detection(
        adv_seed in any::<u64>(),
        bad in 1usize..4,
    ) {
        use nab_repro::nab::adversary::NabAdversary;
        let g = gen::complete(4, 2);
        let cfg = NabConfig { f: 1, symbols: 12, seed: 17 };
        let mut engine = NabEngine::new(g, cfg).unwrap();
        let faulty = BTreeSet::from([bad]);
        let mut adv = RandomStrategy::new(adv_seed, 0.9);
        let input = Value::from_u64s(&(0..12).collect::<Vec<_>>());
        let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();
        // If any fault-free node ended Phase 1 with a wrong value, the
        // instance must have detected a mismatch (Theorem 1 property EC —
        // up to the 2^-16 soundness error, negligible at 24 trials).
        let honest_wrong = rep
            .outputs
            .iter()
            .any(|(v, o)| !faulty.contains(v) && *o != input);
        if honest_wrong {
            prop_assert!(rep.mismatch_detected);
            // And dispute control repaired the outcome.
            prop_assert!(rep.dispute_ran);
        }
        let _ = &mut adv as &mut dyn NabAdversary;
    }
}
