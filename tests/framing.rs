//! Dispute-control soundness under *colluding* adversaries that try to
//! frame fault-free nodes.
//!
//! The critical safety property of Phase 3 (paper, Appendix B): "a pair of
//! fault-free nodes will never be found in dispute with each other" and "a
//! fault-free node will never be found to be faulty". These tests attack
//! that property directly with coordinated liars.

use std::collections::BTreeSet;

use nab_repro::nab::adversary::FramingCollusion;
use nab_repro::nab::engine::{NabConfig, NabEngine, SOURCE};
use nab_repro::nab::Value;
use nab_repro::netgraph::gen;

fn value(symbols: usize, salt: u64) -> Value {
    Value::from_u64s(
        &(0..symbols as u64)
            .map(|i| i * 5 + salt)
            .collect::<Vec<_>>(),
    )
}

/// Two colluders on K7 (f = 2) corrupt and then jointly accuse an innocent
/// node. The scapegoat must never be removed, no fault-free pair may end
/// up in dispute, and the BB properties must survive.
#[test]
fn collusion_cannot_remove_a_fault_free_node() {
    for (colluders, scapegoat) in [([1usize, 2], 3), ([2, 5], 4), ([1, 6], 5)] {
        let faulty: BTreeSet<usize> = colluders.into_iter().collect();
        let mut adv = FramingCollusion {
            scapegoat,
            corruptor: colluders[0],
        };
        let mut engine = NabEngine::new(
            gen::complete(7, 1),
            NabConfig {
                f: 2,
                symbols: 14,
                seed: 31,
            },
        )
        .unwrap();

        for k in 0..5 {
            let input = value(14, k);
            let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();
            // Agreement + validity every instance.
            for (&v, out) in &rep.outputs {
                if !faulty.contains(&v) && !rep.defaulted {
                    assert_eq!(*out, input, "instance {k}, node {v}");
                }
            }
        }
        // Soundness: the scapegoat (and every other fault-free node)
        // survives; any removals are genuine colluders.
        assert!(
            !engine.disputes().removed.contains(&scapegoat),
            "scapegoat {scapegoat} was removed! disputes={:?}",
            engine.disputes()
        );
        for removed in &engine.disputes().removed {
            assert!(faulty.contains(removed), "honest node {removed} removed");
        }
        // No dispute pair consists of two fault-free nodes.
        for &(a, b) in &engine.disputes().pairs {
            assert!(
                faulty.contains(&a) || faulty.contains(&b),
                "fault-free pair ({a},{b}) in dispute"
            );
        }
    }
}

/// Framing the *source* is the highest-value target (removing it would
/// force default outputs forever). It must fail the same way.
#[test]
fn collusion_cannot_frame_the_source() {
    let faulty = BTreeSet::from([3, 4]);
    let mut adv = FramingCollusion {
        scapegoat: SOURCE,
        corruptor: 3,
    };
    let mut engine = NabEngine::new(
        gen::complete(7, 1),
        NabConfig {
            f: 2,
            symbols: 14,
            seed: 5,
        },
    )
    .unwrap();
    for k in 0..6 {
        let input = value(14, k);
        let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();
        assert!(!rep.defaulted, "source must never be evicted");
        for (&v, out) in &rep.outputs {
            if !faulty.contains(&v) {
                assert_eq!(*out, input);
            }
        }
    }
    assert!(!engine.disputes().removed.contains(&SOURCE));
}

/// The collusion does pay a price: the fabricated accusations create
/// disputes between the liars and the scapegoat, eating the liars' own
/// link budget — and once a liar collects f+1 distinct disputes it is
/// excluded. Eventually the system stops running dispute control at all.
#[test]
fn collusion_burns_itself_out() {
    let faulty = BTreeSet::from([1, 2]);
    let mut adv = FramingCollusion {
        scapegoat: 3,
        corruptor: 1,
    };
    let mut engine = NabEngine::new(
        gen::complete(7, 1),
        NabConfig {
            f: 2,
            symbols: 14,
            seed: 77,
        },
    )
    .unwrap();
    let budget = nab_repro::nab::dispute::DisputeState::max_executions(2);
    let mut disputes = 0;
    for k in 0..10 {
        let input = value(14, k);
        let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();
        disputes += usize::from(rep.dispute_ran);
    }
    assert!(
        disputes <= budget,
        "{disputes} dispute rounds > budget {budget}"
    );
    // Steady state: the last instances run clean.
    let input = value(14, 99);
    let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();
    assert!(!rep.dispute_ran, "collusion should be neutralized by now");
}
