//! Integration tests asserting the paper's theorems hold on the
//! implementation, beyond the single worked examples.

use std::collections::BTreeSet;

use nab_repro::gf::Gf2m;
use nab_repro::nab::adversary::HonestStrategy;
use nab_repro::nab::bounds::{self, bounds_report};
use nab_repro::nab::engine::{run_many, NabConfig, NabEngine};
use nab_repro::nab::equality::theorem1_failure_bound;
use nab_repro::nab::theory::theorem1_trial;
use nab_repro::netgraph::flow::min_pairwise_cut_undirected;
use nab_repro::netgraph::{gen, UnGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn theorem1_bound_holds_on_random_graphs() {
    // For several random networks, the empirical probability of sampling
    // unsound coding matrices stays below the union bound (where the bound
    // is informative).
    let mut rng = StdRng::seed_from_u64(50);
    let trials = 60;
    for seed in 0..4u64 {
        let mut grng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(5, 0.7, 2, &mut grng);
        let f = 1;
        let u = UnGraph::from_digraph(&g);
        let cut = min_pairwise_cut_undirected(&u).unwrap();
        let rho = (cut / 2).max(1) as usize;
        // m = 8 bits: bound = C(5,4)·3·ρ / 256.
        let bound = theorem1_failure_bound(5, f, rho, 8);
        let mut fails = 0;
        for _ in 0..trials {
            if !theorem1_trial::<Gf2m<8>, _>(&g, f, rho, &mut rng) {
                fails += 1;
            }
        }
        let emp = fails as f64 / trials as f64;
        if bound < 0.5 {
            // Allow Monte-Carlo slack of ~3 standard deviations.
            let slack = 3.0 * (bound.max(0.02) / trials as f64).sqrt();
            assert!(
                emp <= bound + slack,
                "seed {seed}: empirical {emp} vs bound {bound}"
            );
        }
    }
}

#[test]
fn theorem1_trial_violated_when_rho_exceeds_half_cut() {
    // The ρ ≤ U/2 hypothesis is necessary in general: crank ρ far above
    // U/2 on a thin graph and soundness must become impossible (C_H is
    // wider than its column budget allows).
    let mut g = nab_repro::netgraph::DiGraph::new(4);
    // A sparse ring-ish graph with U small.
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(2, 3, 1);
    g.add_edge(3, 0, 1);
    g.add_edge(1, 0, 1);
    g.add_edge(2, 1, 1);
    g.add_edge(3, 2, 1);
    g.add_edge(0, 3, 1);
    let mut rng = StdRng::seed_from_u64(1);
    // Ω for f=1 on 4 nodes: 3-node subgraphs; some H has only 2 edges →
    // m = 4 columns < (3−1)·ρ rows for ρ ≥ 3.
    let sound = theorem1_trial::<Gf2m<16>, _>(&g, 1, 3, &mut rng);
    assert!(!sound, "ρ far above U/2 cannot be sound");
}

#[test]
fn theorem2_and_3_on_random_ensemble() {
    for seed in 0..8u64 {
        let mut grng = StdRng::seed_from_u64(seed + 100);
        let g = gen::random_connected(5, 0.8, 3, &mut grng);
        let Some(rep) = bounds_report(&g, 0, 1, 1 << 18) else {
            continue;
        };
        // Eq. 6 lower bound never exceeds the Theorem 2 upper bound.
        assert!(
            rep.tnab_lower <= rep.capacity_upper as f64 + 1e-9,
            "seed {seed}: lower {} > upper {}",
            rep.tnab_lower,
            rep.capacity_upper
        );
        // Theorem 3.
        assert!(
            rep.guaranteed_fraction >= 1.0 / 3.0 - 1e-9,
            "seed {seed}: fraction {}",
            rep.guaranteed_fraction
        );
        if rep.gamma_star.value <= rep.rho_star {
            assert!(rep.guaranteed_fraction >= 0.5 - 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn gamma_star_is_reachable_infimum() {
    // γ* lower-bounds the per-instance γ_k of every actual execution.
    use nab_repro::nab::adversary::LyingCorruptor;
    use nab_repro::nab::Value;
    let g = gen::complete(4, 2);
    let gs = bounds::gamma_star(&g, 0, 1, 1 << 18);
    let cfg = NabConfig {
        f: 1,
        symbols: 16,
        seed: 2,
    };
    let mut engine = NabEngine::new(g, cfg).unwrap();
    let faulty = BTreeSet::from([3]);
    let mut adv = LyingCorruptor;
    for i in 0..4 {
        let input = Value::from_u64s(&(0..16u64).map(|x| x + i).collect::<Vec<_>>());
        let rep = engine.run_instance(&input, &faulty, &mut adv).unwrap();
        if !rep.defaulted {
            assert!(
                rep.gamma_k >= gs.value,
                "instance γ_k {} below γ* {}",
                rep.gamma_k,
                gs.value
            );
        }
    }
}

#[test]
fn measured_phase_costs_match_model_on_random_graphs() {
    // Phase 1 takes L/γ_k and the equality check takes L/ρ_k (up to
    // column rounding) — the quantities the throughput analysis (Eq. 6)
    // sums. Verified on an ensemble, not just K4.
    use nab_repro::nab::Value;
    let mut grng = StdRng::seed_from_u64(500);
    let mut checked = 0;
    for _ in 0..10 {
        let g = gen::random_connected(4, 0.9, 3, &mut grng);
        let cfg = NabConfig {
            f: 1,
            symbols: 120,
            seed: 6,
        };
        let Ok(mut engine) = NabEngine::new(g, cfg) else {
            continue;
        };
        let input = Value::from_u64s(&(0..120).collect::<Vec<_>>());
        let rep = engine
            .run_instance(&input, &BTreeSet::new(), &mut HonestStrategy)
            .unwrap();
        let l = input.bits() as f64;
        // Phase 1 streams whole 16-bit symbols, so when γ_k ∤ S the busiest
        // link carries a ⌈S/γ⌉-symbol block: L/γ ≤ phase1 ≤ ⌈S/γ⌉·16.
        // (When γ_k | S both bounds coincide with the exact L/γ model.)
        let p1_ceil = (120usize.div_ceil(rep.gamma_k as usize) * 16) as f64;
        assert!(
            rep.times.phase1 >= l / rep.gamma_k as f64 - 1e-6 && rep.times.phase1 <= p1_ceil + 1e-6,
            "phase1 {} outside [L/γ {}, ⌈S/γ⌉·16 {}]",
            rep.times.phase1,
            l / rep.gamma_k as f64,
            p1_ceil
        );
        let cols = 120usize.div_ceil(rep.rho_k as usize) as f64;
        assert!(
            (rep.times.equality - cols * 16.0).abs() < 1e-6,
            "equality {} vs {}",
            rep.times.equality,
            cols * 16.0
        );
        checked += 1;
    }
    assert!(checked >= 3, "ensemble too thin: {checked}");
}

#[test]
fn throughput_approaches_eq6_with_large_l() {
    // As L grows, measured fault-free throughput converges towards (and
    // above) the per-instance bound γ_1ρ_1/(γ_1+ρ_1) ≥ Eq.6's γ*ρ*/(γ*+ρ*).
    let g = gen::complete(4, 2);
    let rep = bounds_report(&g, 0, 1, 1 << 18).unwrap();
    let mut prev = 0.0;
    for symbols in [60usize, 240, 960] {
        let cfg = NabConfig {
            f: 1,
            symbols,
            seed: 8,
        };
        let mut engine = NabEngine::new(g.clone(), cfg).unwrap();
        let s = run_many(&mut engine, 3, &BTreeSet::new(), &mut HonestStrategy, 2).unwrap();
        assert!(
            s.throughput >= prev * 0.999,
            "throughput not improving in L"
        );
        prev = s.throughput;
    }
    assert!(
        prev >= rep.tnab_lower,
        "large-L throughput {} below Eq.6 bound {}",
        prev,
        rep.tnab_lower
    );
}

#[test]
fn capacity_bound_respects_oblivious_baseline_too() {
    // Sanity for Theorem 2's universality: even the baseline protocol's
    // throughput sits below min(γ*, 2ρ*) on the uniform mesh.
    let g = gen::complete(4, 2);
    let rep = bounds_report(&g, 0, 1, 1 << 18).unwrap();
    let t = nab_repro::bb::baselines::oblivious_throughput(&g, 0, 1, 1 << 14).unwrap();
    assert!(
        t <= rep.capacity_upper as f64 + 1e-9,
        "baseline {} above capacity bound {}",
        t,
        rep.capacity_upper
    );
}
