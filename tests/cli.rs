//! Integration tests for the `nab-sim` command-line interface: help
//! output, clear errors on bad specs (no panics), and the scenario mode
//! end-to-end.

use std::process::{Command, Output};

fn nab_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nab-sim"))
        .args(args)
        .output()
        .expect("spawn nab-sim")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_flag_prints_usage_and_succeeds() {
    for flag in ["--help", "-h"] {
        let out = nab_sim(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let text = stdout(&out);
        assert!(text.contains("USAGE:"), "{flag}: {text}");
        assert!(
            text.contains("--scenario"),
            "{flag} documents scenario mode"
        );
        assert!(text.contains("--topology"), "{flag} documents single mode");
    }
}

#[test]
fn unknown_topology_is_a_clear_error_not_a_panic() {
    let out = nab_sim(&["--topology", "moebius:4:2"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown topology"), "stderr: {err}");
    assert!(err.contains("known:"), "error lists valid families: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unknown_adversary_is_a_clear_error_not_a_panic() {
    let out = nab_sim(&["--adversary", "mallory"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown adversary"), "stderr: {err}");
    assert!(
        err.contains("known:"),
        "error lists valid strategies: {err}"
    );
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn malformed_topology_arity_is_a_clear_error() {
    let out = nab_sim(&["--topology", "complete:4"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("parameter"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn grid_variables_are_rejected_in_single_run_mode() {
    let out = nab_sim(&["--topology", "complete:$n:$cap"]);
    assert!(!out.status.success(), "variables must not silently default");
    let err = stderr(&out);
    assert!(err.contains("grid variables"), "stderr: {err}");
    assert!(err.contains(".scenario"), "stderr: {err}");
}

#[test]
fn single_run_flags_are_rejected_in_scenario_mode() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("modecheck.scenario");
    std::fs::write(&path, "name = modecheck\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap(), "--adversary", "liar"]);
    assert!(!out.status.success(), "flag must not be silently ignored");
    let err = stderr(&out);
    assert!(err.contains("--adversary"), "stderr: {err}");
    assert!(err.contains(".scenario file"), "stderr: {err}");
}

#[test]
fn scenario_flags_are_rejected_in_single_run_mode() {
    for flags in [["--threads", "2"], ["--json", "-"]] {
        let out = nab_sim(&flags);
        assert!(!out.status.success(), "{flags:?} must not be ignored");
        let err = stderr(&out);
        assert!(err.contains("requires --scenario"), "stderr: {err}");
    }
}

#[test]
fn duplicate_flags_are_rejected() {
    let out = nab_sim(&["--q", "2", "--symbols", "8", "--q", "1"]);
    assert!(
        !out.status.success(),
        "repeated flags must not be last-wins"
    );
    let err = stderr(&out);
    assert!(err.contains("duplicate flag --q"), "stderr: {err}");
}

#[test]
fn unknown_flag_suggests_help() {
    let out = nab_sim(&["--frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--help"));
}

#[test]
fn faulty_set_larger_than_f_is_rejected() {
    let out = nab_sim(&["--faulty", "1,2", "--f", "1", "--q", "1"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("--f"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn faulty_node_outside_graph_is_rejected() {
    let out = nab_sim(&["--topology", "complete:4:2", "--faulty", "9", "--q", "1"]);
    assert!(
        !out.status.success(),
        "a nonexistent faulty node must not silently report success"
    );
    let err = stderr(&out);
    assert!(err.contains("node 9"), "stderr: {err}");
    assert!(err.contains("0..4"), "stderr: {err}");
}

#[test]
fn single_run_mode_still_works() {
    let out = nab_sim(&[
        "--topology",
        "complete:4:2",
        "--q",
        "2",
        "--symbols",
        "8",
        "--faulty",
        "2",
        "--adversary",
        "corruptor",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("throughput"));
    assert!(text.contains("correctness (agreement + validity in every instance): true"));
}

#[test]
fn scenario_mode_runs_a_file_and_emits_json() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let scenario_path = dir.join("smoke.scenario");
    let json_path = dir.join("smoke.json");
    std::fs::write(
        &scenario_path,
        "name = cli-smoke\n\
         topology = complete:$n:$cap\n\
         adversary = corruptor\n\
         faults = fixed:2\n\
         q = 2\n\
         n = 4\n\
         cap = 2\n\
         symbols = 8\n\
         seeds = 2\n",
    )
    .unwrap();
    let out = nab_sim(&[
        "--scenario",
        scenario_path.to_str().unwrap(),
        "--threads",
        "2",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("throughput"), "summary table: {text}");
    assert!(text.contains("all correct: true"), "{text}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"scenario\": \"cli-smoke\""));
    assert!(json.contains("\"ok_jobs\": 2"));
}

#[test]
fn no_batch_flag_produces_byte_identical_canonical_json() {
    // The batched cross-stream execution path must be invisible to
    // results: the canonical (timing-free) JSON report of a sweep with
    // interleaved streams and a dispute mid-run is byte-for-byte the
    // same with batching on (default) and off (--no-batch).
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batchcmp.scenario");
    std::fs::write(
        &path,
        "name = batchcmp\n\
         topology = complete:$n:$cap\n\
         adversary = corruptor\n\
         faults = fixed:2\n\
         q = 3\n\
         streams = 2\n\
         n = 4,5\n\
         cap = 2\n\
         symbols = 8,16\n\
         seeds = 2\n",
    )
    .unwrap();
    let batched = nab_sim(&["--scenario", path.to_str().unwrap(), "--json", "-"]);
    assert!(batched.status.success(), "stderr: {}", stderr(&batched));
    let unbatched = nab_sim(&[
        "--scenario",
        path.to_str().unwrap(),
        "--json",
        "-",
        "--no-batch",
    ]);
    assert!(unbatched.status.success(), "stderr: {}", stderr(&unbatched));
    assert_eq!(
        stdout(&batched),
        stdout(&unbatched),
        "batched and unbatched sweeps must serialize identically"
    );
    assert!(stdout(&batched).contains("\"scenario\": \"batchcmp\""));
}

#[test]
fn no_batch_requires_scenario_mode() {
    let out = nab_sim(&["--no-batch"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("requires --scenario"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn json_to_stdout_is_pure_json() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipe.scenario");
    std::fs::write(&path, "name = pipe\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap(), "--json", "-"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.starts_with('{') && text.trim_end().ends_with('}'),
        "stdout must be a single JSON document, got: {}",
        &text[..text.len().min(120)]
    );
    // The human summary still reaches the user, on stderr.
    assert!(stderr(&out).contains("all correct"), "{}", stderr(&out));
}

#[test]
fn timings_flag_adds_nonnegative_wall_fields_and_keeps_stdout_pure() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("timed.scenario");
    std::fs::write(
        &path,
        "name = timed\n\
         topology = complete:$n:$cap\n\
         q = 2\n\
         n = 4\n\
         cap = 2\n\
         symbols = 8\n",
    )
    .unwrap();
    let out = nab_sim(&[
        "--scenario",
        path.to_str().unwrap(),
        "--json",
        "-",
        "--timings",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // Stdout purity must survive --timings: still exactly one JSON doc.
    assert!(
        text.starts_with('{') && text.trim_end().ends_with('}'),
        "stdout must stay pure JSON under --timings, got: {}",
        &text[..text.len().min(120)]
    );
    // Every per-phase wall field is present and parses as a non-negative
    // integer (u64 syntax: no minus sign, no decimal point).
    for key in [
        "\"wall_phase1_ns\"",
        "\"wall_equality_ns\"",
        "\"wall_flags_ns\"",
        "\"wall_dispute_ns\"",
        "\"wall_total_ns\"",
    ] {
        let mut found = 0;
        for (pos, _) in text.match_indices(key) {
            let rest = &text[pos + key.len()..];
            let rest = rest.trim_start_matches([':', ' ']);
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            assert!(
                !digits.is_empty() && digits.parse::<u64>().is_ok(),
                "{key} must be a non-negative integer, context: {}",
                &rest[..rest.len().min(40)]
            );
            found += 1;
        }
        assert!(found > 0, "timing field {key} missing from --timings JSON");
    }
    // An instance that runs Phase 1 must have spent measurable time there.
    let total_key = "\"wall_total_ns\": ";
    let pos = text.rfind(total_key).unwrap();
    let digits: String = text[pos + total_key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    assert!(
        digits.parse::<u64>().unwrap() > 0,
        "aggregate wall time is zero"
    );
}

#[test]
fn timings_are_excluded_without_the_flag() {
    // Regression pin: the canonical --json output must stay byte-stable
    // across runs, so wall-clock fields may never leak into it.
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("untimed.scenario");
    std::fs::write(&path, "name = untimed\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap(), "--json", "-"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        !text.contains("wall_"),
        "canonical JSON must not contain wall-clock fields"
    );
}

#[test]
fn timings_flag_requires_scenario_mode() {
    let out = nab_sim(&["--timings"]);
    assert!(!out.status.success(), "--timings must not be ignored");
    assert!(stderr(&out).contains("requires --scenario"));
}

#[test]
fn timings_without_json_is_a_clear_error_not_a_silent_noop() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("timed-nojson.scenario");
    std::fs::write(&path, "name = timed-nojson\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap(), "--timings"]);
    assert!(
        !out.status.success(),
        "--timings without --json has nowhere to put the fields"
    );
    let err = stderr(&out);
    assert!(err.contains("--json"), "error must point at --json: {err}");
}

#[test]
fn validate_mode_plans_without_executing() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("validate-ok.scenario");
    std::fs::write(
        &path,
        "name = validate-ok\n\
         topology = complete:$n:$cap\n\
         q = 2\n\
         n = 4,5\n\
         cap = 2\n\
         symbols = 8\n\
         seeds = 2\n",
    )
    .unwrap();
    let out = nab_sim(&["--validate", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // Every grid point reports its planned quantities.
    assert!(text.contains("plan ok"), "{text}");
    assert!(text.contains("gamma="), "{text}");
    assert!(text.contains("rho="), "{text}");
    // 2 n-values × 2 seeds = 4 grid points but only 2 distinct networks:
    // the plan cache dedupes, and the summary says so.
    assert!(
        text.contains("4 grid points, 4 plan ok, 0 failed"),
        "{text}"
    );
    assert!(text.contains("(2 unique plans built)"), "{text}");
    assert!(text.contains("(cached)"), "{text}");
}

#[test]
fn validate_mode_reports_planning_failures_with_exit_2() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("validate-bad.scenario");
    // A ring is never 3-connected: every grid point must fail planning.
    std::fs::write(
        &path,
        "name = validate-bad\n\
         topology = ring:$n:$cap\n\
         q = 1\n\
         n = 5\n\
         cap = 1\n\
         symbols = 8\n",
    )
    .unwrap();
    let out = nab_sim(&["--validate", path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "planning failures must exit 2, stderr: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("connectivity"), "{text}");
    assert!(text.contains("1 failed"), "{text}");
}

#[test]
fn validate_mode_missing_file_is_exit_1() {
    let out = nab_sim(&["--validate", "/nonexistent/x.scenario"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read scenario"));
}

#[test]
fn validate_mode_rejects_other_mode_flags() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("validate-flags.scenario");
    std::fs::write(&path, "name = vf\nq = 1\nsymbols = 8\n").unwrap();
    let p = path.to_str().unwrap();
    for extra in [
        ["--q", "2"].as_slice(),
        ["--threads", "2"].as_slice(),
        ["--scenario", p].as_slice(),
    ] {
        let mut argv = vec!["--validate", p];
        argv.extend_from_slice(extra);
        let out = nab_sim(&argv);
        assert!(!out.status.success(), "{extra:?} must not be ignored");
        let err = stderr(&out);
        assert!(
            err.contains("--validate"),
            "error must mention --validate: {err}"
        );
    }
}

#[test]
fn scenario_mode_reports_parse_errors_with_line_numbers() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.scenario");
    std::fs::write(&path, "name = broken\ntopology = hypercube:4:4\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("line 2"), "stderr: {err}");
    assert!(err.contains("unknown topology"), "stderr: {err}");
}

#[test]
fn missing_scenario_file_is_a_clear_error() {
    let out = nab_sim(&["--scenario", "/nonexistent/x.scenario"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read scenario"));
}

#[test]
fn trace_jsonl_covers_sweep_jobs_instances_and_phases() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let scenario_path = dir.join("traced.scenario");
    let trace_path = dir.join("traced.jsonl");
    std::fs::write(
        &scenario_path,
        "name = traced\n\
         topology = complete:$n:$cap\n\
         adversary = corruptor\n\
         faults = fixed:2\n\
         q = 2\n\
         n = 4\n\
         cap = 2\n\
         symbols = 8\n\
         seeds = 2\n",
    )
    .unwrap();
    let out = nab_sim(&[
        "--scenario",
        scenario_path.to_str().unwrap(),
        "--threads",
        "2",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    // Every line is one event object with the fixed key prefix.
    for line in trace.lines() {
        assert!(
            line.starts_with("{\"seq\":") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        assert!(line.contains("\"kind\":\""), "no kind: {line}");
    }
    // The stream covers every layer the ISSUE promises: sweep, job,
    // instance, phase, plan cache, and (corruptor run) disputes.
    for kind in [
        "\"kind\":\"sweep_start\"",
        "\"kind\":\"sweep_end\"",
        "\"kind\":\"job_start\"",
        "\"kind\":\"job_end\"",
        "\"kind\":\"instance_start\"",
        "\"kind\":\"instance_end\"",
        "\"kind\":\"phase_start\"",
        "\"kind\":\"phase_end\"",
        "\"kind\":\"plan_cache_miss\"",
        "\"kind\":\"plan_cache_hit\"",
        "\"kind\":\"dispute_raised\"",
        "\"kind\":\"node_exposed\"",
    ] {
        assert!(trace.contains(kind), "{kind} missing from trace");
    }
    // Phase spans close on every path.
    assert_eq!(
        trace.matches("\"kind\":\"phase_start\"").count(),
        trace.matches("\"kind\":\"phase_end\"").count(),
    );
}

#[test]
fn trace_to_stdout_is_pure_jsonl_and_moves_summary_to_stderr() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace-pipe.scenario");
    std::fs::write(&path, "name = trace-pipe\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap(), "--trace", "-"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.lines().all(|l| l.starts_with('{') && l.ends_with('}')),
        "stdout must be pure JSONL, got: {}",
        &text[..text.len().min(120)]
    );
    assert!(stderr(&out).contains("all correct"), "{}", stderr(&out));
}

#[test]
fn trace_chrome_format_is_one_json_document_with_balanced_spans() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chrome.scenario");
    std::fs::write(&path, "name = chrome\nq = 2\nsymbols = 8\nseeds = 2\n").unwrap();
    let out = nab_sim(&[
        "--scenario",
        path.to_str().unwrap(),
        "--trace",
        "-",
        "--trace-format",
        "chrome",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.starts_with("{\"traceEvents\":["),
        "{}",
        &text[..text.len().min(80)]
    );
    assert!(
        text.trim_end().ends_with("],\"displayTimeUnit\":\"ns\"}"),
        "unterminated trace document"
    );
    // Every duration span opened (ph B) is closed (ph E).
    assert_eq!(
        text.matches("\"ph\":\"B\"").count(),
        text.matches("\"ph\":\"E\"").count(),
    );
    assert!(text.contains("\"name\":\"phase1\""), "phase spans present");
}

#[test]
fn trace_format_without_trace_is_a_clear_error() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fmt-only.scenario");
    std::fs::write(&path, "name = fmt-only\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&[
        "--scenario",
        path.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(!out.status.success(), "--trace-format must not be ignored");
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));
}

#[test]
fn trace_and_json_cannot_both_claim_stdout() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("two-stdout.scenario");
    std::fs::write(&path, "name = two-stdout\nq = 1\nsymbols = 8\n").unwrap();
    let out = nab_sim(&[
        "--scenario",
        path.to_str().unwrap(),
        "--trace",
        "-",
        "--json",
        "-",
    ]);
    assert!(
        !out.status.success(),
        "two writers on stdout would interleave"
    );
    assert!(stderr(&out).contains("stdout"), "{}", stderr(&out));
}

#[test]
fn trace_and_progress_require_scenario_mode() {
    for flags in [["--trace", "/tmp/x"].as_slice(), ["--progress"].as_slice()] {
        let out = nab_sim(flags);
        assert!(!out.status.success(), "{flags:?} must not be ignored");
        assert!(
            stderr(&out).contains("requires --scenario"),
            "{}",
            stderr(&out)
        );
    }
}

#[test]
fn progress_reports_every_job_on_stderr() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("progress.scenario");
    std::fs::write(&path, "name = progress\nq = 1\nsymbols = 8\nseeds = 4\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap(), "--progress"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    // Captured stderr is not a tty, so the reporter prints one line per
    // finished job instead of rewriting in place.
    let err = stderr(&out);
    assert!(err.contains("jobs 4/4"), "final update missing: {err}");
    assert!(err.contains("inst/s"), "{err}");
    assert!(err.contains("cache hits"), "{err}");
    assert_eq!(
        err.matches("inst/s").count(),
        4,
        "one update per job: {err}"
    );
}

#[test]
fn empty_sweep_warns_and_exits_2() {
    let dir = std::env::temp_dir().join("nab-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.scenario");
    std::fs::write(&path, "name = empty\nq = 1\nsymbols = 8\nseeds = 0\n").unwrap();
    let out = nab_sim(&["--scenario", path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "an empty grid is neither success nor failure, stderr: {}",
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("warning"), "{err}");
    assert!(err.contains("empty grid"), "{err}");
    assert!(err.contains("nothing to run"), "{err}");
}
