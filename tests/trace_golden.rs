//! Golden-file test for the structured event trace: a fixed-seed,
//! single-threaded run of the bundled `fig1a` scenario must emit a
//! byte-stable JSONL event stream once wall-clock payloads (`ts_ns`,
//! `build_ns`) are normalized to zero. This pins the event taxonomy, the
//! fixed key order, the per-event payload shape, *and* the deterministic
//! single-thread event ordering — any intentional change to the trace
//! format must regenerate `tests/golden/fig1a.trace.jsonl`.

use std::process::Command;

/// Zeroes the run of digits following every occurrence of `key`, leaving
/// everything else byte-for-byte intact.
fn zero_after(s: &str, key: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(p) = rest.find(key) {
        let end = p + key.len();
        out.push_str(&rest[..end]);
        let tail = &rest[end..];
        let digits = tail.chars().take_while(|c| c.is_ascii_digit()).count();
        out.push('0');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Blanks the quoted string value following every occurrence of `key`
/// (used for machine-dependent payloads like the SIMD tier), leaving
/// everything else byte-for-byte intact.
fn blank_string_after(s: &str, key: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(p) = rest.find(key) {
        let end = p + key.len();
        out.push_str(&rest[..end]);
        let tail = &rest[end..];
        let value = tail.chars().take_while(|&c| c != '"').count();
        rest = &tail[value..];
    }
    out.push_str(rest);
    out
}

/// Strips the payloads that legitimately vary run to run (wall-clock)
/// or machine to machine (SIMD tier / CPU features).
fn normalize(s: &str) -> String {
    let s = zero_after(&zero_after(s, "\"ts_ns\":"), "\"build_ns\":");
    blank_string_after(&blank_string_after(&s, "\"tier\":\""), "\"cpu\":\"")
}

#[test]
fn fig1a_single_thread_trace_matches_golden() {
    let scenario = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/fig1a.scenario");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig1a.trace.jsonl"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_nab-sim"))
        .args(["--scenario", scenario, "--threads", "1", "--trace", "-"])
        .output()
        .expect("spawn nab-sim");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = normalize(&String::from_utf8_lossy(&out.stdout));
    let golden = std::fs::read_to_string(golden_path).expect("golden file");
    if got != golden {
        // Line-level diff beats a 20 KB string mismatch dump.
        for (i, (g, w)) in got.lines().zip(golden.lines()).enumerate() {
            assert_eq!(g, w, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            golden.lines().count(),
            "event count changed — regenerate the golden if intentional"
        );
        panic!("traces differ but no line-level divergence found");
    }
}

#[test]
fn normalize_only_touches_wall_clock_payloads() {
    let line = "{\"seq\":3,\"ts_ns\":528287,\"job\":0,\"stream\":0,\"instance\":0,\
                \"kind\":\"plan_built\",\"build_ns\":297283}";
    assert_eq!(
        normalize(line),
        "{\"seq\":3,\"ts_ns\":0,\"job\":0,\"stream\":0,\"instance\":0,\
         \"kind\":\"plan_built\",\"build_ns\":0}"
    );
}

#[test]
fn normalize_blanks_machine_dependent_sweep_start_payloads() {
    let line = "{\"seq\":0,\"ts_ns\":12,\"job\":0,\"stream\":0,\"instance\":0,\
                \"kind\":\"sweep_start\",\"jobs\":9,\"tier\":\"avx2\",\"cpu\":\"sse2,avx2\"}";
    assert_eq!(
        normalize(line),
        "{\"seq\":0,\"ts_ns\":0,\"job\":0,\"stream\":0,\"instance\":0,\
         \"kind\":\"sweep_start\",\"jobs\":9,\"tier\":\"\",\"cpu\":\"\"}"
    );
}
