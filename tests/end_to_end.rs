//! End-to-end integration tests: NAB's agreement, validity, and
//! termination under every adversary strategy × every faulty-node choice,
//! across multiple instances with evolving `G_k`.

use std::collections::BTreeSet;

use nab_repro::nab::adversary::{
    EqualityGarbler, EquivocatingSource, FalseAlarm, HonestStrategy, LyingCorruptor, NabAdversary,
    RandomStrategy, TruthfulCorruptor,
};
use nab_repro::nab::dispute::DisputeState;
use nab_repro::nab::engine::{NabConfig, NabEngine, SOURCE};
use nab_repro::nab::Value;
use nab_repro::netgraph::gen;
use nab_repro::netgraph::DiGraph;

fn adversaries() -> Vec<(&'static str, Box<dyn NabAdversary>)> {
    vec![
        ("honest", Box::new(HonestStrategy)),
        ("truthful-corruptor", Box::new(TruthfulCorruptor)),
        ("lying-corruptor", Box::new(LyingCorruptor)),
        ("equivocating-source", Box::new(EquivocatingSource)),
        ("false-alarm", Box::new(FalseAlarm)),
        ("equality-garbler", Box::new(EqualityGarbler)),
        ("random-0.5", Box::new(RandomStrategy::new(4, 0.5))),
        ("random-1.0", Box::new(RandomStrategy::new(5, 1.0))),
    ]
}

/// Runs `q` instances and asserts the BB properties for each.
fn check_run(g: DiGraph, f: usize, faulty: BTreeSet<usize>, adv: &mut dyn NabAdversary, q: usize) {
    let cfg = NabConfig {
        f,
        symbols: 24,
        seed: 99,
    };
    let mut engine = NabEngine::new(g, cfg).expect("valid network");
    let mut disputes_seen = 0;
    for inst in 0..q {
        let input = Value::from_u64s(
            &(0..24u64)
                .map(|i| i * 13 + inst as u64 * 7 + 1)
                .collect::<Vec<_>>(),
        );
        let rep = engine
            .run_instance(&input, &faulty, adv)
            .expect("instance must terminate");
        disputes_seen += usize::from(rep.dispute_ran);

        // Termination: every fault-free node decided.
        let gk_nodes: BTreeSet<usize> = rep.outputs.keys().copied().collect();
        for &v in &gk_nodes {
            assert!(rep.outputs.contains_key(&v));
        }

        // Agreement among fault-free nodes.
        let honest: Vec<&Value> = rep
            .outputs
            .iter()
            .filter(|(v, _)| !faulty.contains(v))
            .map(|(_, o)| o)
            .collect();
        assert!(!honest.is_empty());
        for w in honest.windows(2) {
            assert_eq!(w[0], w[1], "agreement violated at instance {inst}");
        }

        // Validity when the source is fault-free.
        if !faulty.contains(&SOURCE) && !rep.defaulted {
            assert_eq!(honest[0], &input, "validity violated at instance {inst}");
        }
    }
    assert!(
        disputes_seen <= DisputeState::max_executions(f),
        "dispute budget exceeded: {disputes_seen}"
    );
}

#[test]
fn k4_all_adversaries_all_fault_positions() {
    for bad in 0..4usize {
        for (name, mut adv) in adversaries() {
            check_run(
                gen::complete(4, 2),
                1,
                BTreeSet::from([bad]),
                adv.as_mut(),
                4,
            );
            let _ = name;
        }
    }
}

#[test]
fn k4_no_faults_all_adversaries_are_noops() {
    for (_, mut adv) in adversaries() {
        check_run(gen::complete(4, 2), 1, BTreeSet::new(), adv.as_mut(), 2);
    }
}

#[test]
fn k5_single_fault_heavier_graph() {
    for bad in [0usize, 2, 4] {
        for (_, mut adv) in adversaries() {
            check_run(
                gen::complete(5, 2),
                1,
                BTreeSet::from([bad]),
                adv.as_mut(),
                3,
            );
        }
    }
}

#[test]
fn k7_two_faults() {
    // f = 2 with two colluding corruptors.
    for pair in [[1usize, 2], [0, 3], [5, 6]] {
        check_run(
            gen::complete(7, 1),
            2,
            BTreeSet::from(pair),
            &mut TruthfulCorruptor,
            5,
        );
        check_run(
            gen::complete(7, 1),
            2,
            BTreeSet::from(pair),
            &mut RandomStrategy::new(11, 0.8),
            5,
        );
    }
}

#[test]
fn heterogeneous_capacities() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(21);
    for trial in 0..3 {
        let g = gen::complete_heterogeneous(4, 1, 6, &mut rng);
        check_run(
            g,
            1,
            BTreeSet::from([(trial % 3) + 1]),
            &mut TruthfulCorruptor,
            3,
        );
    }
}

#[test]
fn graph_evolution_is_monotone() {
    // G_{k+1} ⊆ G_k: active nodes and live edges never grow back.
    let cfg = NabConfig {
        f: 1,
        symbols: 16,
        seed: 7,
    };
    let mut engine = NabEngine::new(gen::complete(4, 2), cfg).unwrap();
    let faulty = BTreeSet::from([1]);
    let mut adv = LyingCorruptor;
    let mut prev_edges = engine.current_graph().edge_count();
    let mut prev_nodes = engine.current_graph().active_count();
    for i in 0..4 {
        let input = Value::from_u64s(&(0..16u64).map(|x| x + i).collect::<Vec<_>>());
        engine.run_instance(&input, &faulty, &mut adv).unwrap();
        let gk = engine.current_graph();
        assert!(gk.edge_count() <= prev_edges);
        assert!(gk.active_count() <= prev_nodes);
        prev_edges = gk.edge_count();
        prev_nodes = gk.active_count();
    }
}

#[test]
fn fault_free_nodes_never_removed() {
    // Soundness of dispute control: across all adversaries and positions,
    // only genuinely faulty nodes are ever excluded.
    for bad in 0..4usize {
        for (_, mut adv) in adversaries() {
            let cfg = NabConfig {
                f: 1,
                symbols: 16,
                seed: 3,
            };
            let mut engine = NabEngine::new(gen::complete(4, 2), cfg).unwrap();
            let faulty = BTreeSet::from([bad]);
            for i in 0..3 {
                let input = Value::from_u64s(&(0..16u64).map(|x| x * 3 + i).collect::<Vec<_>>());
                engine.run_instance(&input, &faulty, adv.as_mut()).unwrap();
            }
            for removed in &engine.disputes().removed {
                assert!(
                    faulty.contains(removed),
                    "fault-free node {removed} was removed (adversary at {bad})"
                );
            }
            // Dispute pairs always include a faulty endpoint.
            for &(a, b) in &engine.disputes().pairs {
                assert!(
                    faulty.contains(&a) || faulty.contains(&b),
                    "dispute pair ({a},{b}) has no faulty endpoint"
                );
            }
        }
    }
}

#[test]
fn paper_figure_network_runs_nab() {
    // Figure 1(a) has connectivity 2 < 2f+1, so NAB must refuse it.
    let cfg = NabConfig {
        f: 1,
        symbols: 8,
        seed: 1,
    };
    assert!(NabEngine::new(gen::figure_1a(), cfg).is_err());
}
