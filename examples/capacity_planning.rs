//! Capacity planning: given candidate datacenter interconnect topologies,
//! compute each one's Byzantine-broadcast capacity bounds (Theorem 2) and
//! NAB's guaranteed throughput (Eq. 6) to pick the best buy.
//!
//! Run with: `cargo run --example capacity_planning`

use nab_repro::nab::bounds::bounds_report;
use nab_repro::netgraph::{gen, DiGraph};

fn candidate_topologies() -> Vec<(&'static str, DiGraph, usize)> {
    // Three ways to spend a link budget on a 4-node BB deployment with
    // f = 1, plus a 7-node option tolerating f = 2.
    vec![
        ("uniform mesh (cap 2)", gen::complete(4, 2), 1),
        ("uniform mesh (cap 4)", gen::complete(4, 4), 1),
        (
            "fat source links",
            {
                let mut g = DiGraph::new(4);
                for i in 0..4usize {
                    for j in 0..4usize {
                        if i == j {
                            continue;
                        }
                        // Source-adjacent links get capacity 6, the rest 1.
                        let cap = if i == 0 || j == 0 { 6 } else { 1 };
                        g.add_edge(i, j, cap);
                    }
                }
                g
            },
            1,
        ),
        ("7-node mesh, f=2", gen::complete(7, 2), 2),
    ]
}

fn main() {
    println!(
        "{:<22} {:>4} {:>4} {:>4} {:>4} {:>11} {:>10} {:>9}",
        "topology", "γ1", "γ*", "U1", "ρ*", "Eq.6 lower", "Thm2 upper", "fraction"
    );
    for (name, g, f) in candidate_topologies() {
        match bounds_report(&g, 0, f, 1 << 18) {
            Some(r) => {
                println!(
                    "{:<22} {:>4} {:>4} {:>4} {:>4} {:>11.2} {:>10} {:>9.3}",
                    name,
                    r.gamma1,
                    r.gamma_star.value,
                    r.u1,
                    r.rho_star,
                    r.tnab_lower,
                    r.capacity_upper,
                    r.guaranteed_fraction
                );
                // Theorem 3, checked live:
                assert!(r.guaranteed_fraction >= 1.0 / 3.0 - 1e-9);
            }
            None => println!("{name:<22} (violates BB prerequisites)"),
        }
    }
    println!(
        "\nReading: 'Eq.6 lower' is NAB's guaranteed worst-case throughput;\n\
         'Thm2 upper' bounds what ANY algorithm could achieve. NAB is always\n\
         within 3× of optimal (2× when γ* ≤ ρ*)."
    );
}
