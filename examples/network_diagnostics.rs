//! Network diagnostics: find the binding min-cut pair, inspect per-link
//! Phase-1 utilization, and see where capacity is stranded — the analysis
//! an operator runs before upgrading links.
//!
//! Run with: `cargo run --example network_diagnostics`

use std::collections::BTreeSet;

use nab_repro::nab::adversary::HonestStrategy;
use nab_repro::nab::phase1::run_phase1;
use nab_repro::nab::stats::{phase1_link_loads, phase1_utilization};
use nab_repro::nab::Value;
use nab_repro::netgraph::arborescence::pack_arborescences;
use nab_repro::netgraph::flow::broadcast_rate;
use nab_repro::netgraph::gen;
use nab_repro::netgraph::gomoryhu::GomoryHuTree;
use nab_repro::netgraph::UnGraph;

fn main() {
    // A deliberately lopsided network: a fast core with one thin pair.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let g = gen::complete_heterogeneous(5, 1, 6, &mut rng);

    // --- Cut structure: the Gomory–Hu tree. -------------------------------
    let u = UnGraph::from_digraph(&g);
    let tree = GomoryHuTree::build(&u).expect("≥ 2 nodes");
    println!("Gomory–Hu tree (edge = pairwise min cut):");
    for (a, b, w) in tree.edges() {
        println!("  {a} — {b}: {w}");
    }
    let (a, b, w) = tree.binding_pair();
    println!("binding pair: ({a}, {b}) with cut {w}");
    println!("→ the equality-check budget is U/2 = {}\n", w / 2);

    // --- Phase-1 saturation. ----------------------------------------------
    let gamma = broadcast_rate(&g, 0);
    let trees = pack_arborescences(&g, 0, gamma).expect("Edmonds packing");
    let input = Value::from_u64s(&(0..120).collect::<Vec<_>>());
    let p1 = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
    println!(
        "Phase 1: γ = {gamma}, {} arborescences, duration {:.1} time units",
        trees.len(),
        p1.duration
    );
    let summary = phase1_utilization(&g, &p1);
    println!(
        "utilization: max {:.2} (the bottleneck), mean over loaded links {:.2}, {} of {} links loaded",
        summary.max, summary.mean_loaded, summary.loaded_links, summary.total_links
    );

    println!("\nhottest links:");
    let mut loads: Vec<_> = phase1_link_loads(&g, &p1).into_iter().collect();
    loads.sort_by(|x, y| y.1.utilization.total_cmp(&x.1.utilization));
    for ((s, d), l) in loads.iter().take(5) {
        println!(
            "  {s} → {d}: {} bits over cap {} ({:.0}% busy)",
            l.bits,
            l.cap,
            l.utilization * 100.0
        );
    }
    println!("\nidle links (stranded capacity — candidates for downgrade):");
    for ((s, d), _) in g
        .edges()
        .map(|(_, e)| ((e.src, e.dst), e.cap))
        .filter(|(k, _)| !loads.iter().any(|(lk, _)| lk == k))
        .take(5)
    {
        println!("  {s} → {d}");
    }
}
