//! Quickstart: one Byzantine broadcast with NAB on a 4-node network.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::BTreeSet;

use nab_repro::nab::adversary::{HonestStrategy, TruthfulCorruptor};
use nab_repro::nab::engine::{NabConfig, NabEngine};
use nab_repro::nab::Value;
use nab_repro::netgraph::gen;

fn main() {
    // A complete 4-node network, every directed link carrying 2 bits per
    // time unit. Node 0 is the broadcast source; we tolerate f = 1
    // Byzantine node.
    let network = gen::complete(4, 2);
    let cfg = NabConfig {
        f: 1,
        symbols: 64, // L = 1024 bits per instance
        seed: 2012,
    };
    let mut engine = NabEngine::new(network, cfg).expect("network meets n≥3f+1, κ≥2f+1");

    // --- Instance 1: everyone behaves. -----------------------------------
    let input = Value::from_u64s(&(0..64).map(|i| i * 31 + 5).collect::<Vec<_>>());
    let report = engine
        .run_instance(&input, &BTreeSet::new(), &mut HonestStrategy)
        .expect("instance runs");
    println!("fault-free instance:");
    println!("  γ_k = {}, ρ_k = {}", report.gamma_k, report.rho_k);
    println!(
        "  times: phase1={:.1} equality={:.1} flags={:.1} dispute={:.1}",
        report.times.phase1, report.times.equality, report.times.flags, report.times.dispute
    );
    assert!(report.outputs.values().all(|v| *v == input));
    println!("  all 4 nodes decided the source's input ✓\n");

    // --- Instance 2: node 2 is Byzantine and corrupts what it forwards. --
    let faulty = BTreeSet::from([2]);
    let report = engine
        .run_instance(&input, &faulty, &mut TruthfulCorruptor)
        .expect("instance runs");
    println!("instance with corrupting relay (node 2):");
    println!(
        "  mismatch detected: {}, dispute control ran: {}",
        report.mismatch_detected, report.dispute_ran
    );
    println!("  nodes exposed as faulty: {:?}", report.newly_removed);
    for (&node, out) in &report.outputs {
        if !faulty.contains(&node) {
            assert_eq!(*out, input, "validity must hold");
        }
    }
    println!("  fault-free nodes still agreed on the source's input ✓\n");

    // --- Instance 3: the exposed node is gone; NAB runs at full speed. ---
    let report = engine
        .run_instance(&input, &faulty, &mut TruthfulCorruptor)
        .expect("instance runs");
    println!("steady state after exposure:");
    println!(
        "  dispute ran: {} (fast path, total time {:.1})",
        report.dispute_ran,
        report.times.total()
    );
    assert!(!report.dispute_ran);
}
