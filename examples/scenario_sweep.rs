//! Drive the scenario engine from Rust: build a spec with the builder
//! API (no `.scenario` file needed), run it across threads, and inspect
//! the aggregated report — including the amortized-overhead story the
//! `f(f+1)` dispute bound guarantees.
//!
//! Run with: `cargo run --release --example scenario_sweep`

use nab_repro::scenario::{
    run_sweep, AdversarySpec, FaultSchedule, ScenarioSpec, Tok, TopologyTemplate,
};

fn main() {
    // A false-alarm adversary rotating around K5/K6: it burns dispute
    // rounds early, gets exposed, and steady-state throughput recovers.
    let spec = ScenarioSpec::new("example-amortization")
        .with_topology(TopologyTemplate::Complete {
            n: Tok::N,
            cap: Tok::Cap,
        })
        .with_adversary(AdversarySpec::FalseAlarm)
        .with_faults(FaultSchedule::Rotating { count: 1 })
        .with_q(6)
        .with_n(vec![5, 6])
        .with_cap(vec![2])
        .with_symbols(vec![32])
        .with_seeds(3)
        .with_seed0(17)
        .with_bounds(true);

    let report = run_sweep(&spec, 0).expect("spec is valid");
    print!("{}", report.summary_table());

    for job in &report.jobs {
        let m = job.result.as_ref().expect("all grid points valid");
        // When the rotating fault lands on the source, its exposure makes
        // later instances default at zero simulated cost and steady-state
        // throughput is undefined — report it as such.
        let steady = m
            .steady_throughput
            .map(|t| format!("{t:.3}"))
            .unwrap_or_else(|| "n/a (defaulted)".into());
        println!(
            "n={} seed#{}: faulty {:?} exposed at instances {:?}; overall {:.3} vs steady {steady} \
             bits/unit (amortized overhead {:.1}/instance, disputes {}/{})",
            job.n,
            job.seed_index,
            job.faulty,
            m.exposed_history.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            m.throughput,
            m.amortized_overhead,
            m.dispute_rounds,
            m.dispute_budget,
        );
        assert!(m.all_correct, "BB safety must hold under false alarms");
        if let Some(steady) = m.steady_throughput {
            assert!(
                steady >= m.throughput,
                "dispute rounds only ever slow the early instances"
            );
        }
    }
    println!(
        "aggregate: {} jobs, mean {:.3} bits/unit, budget violated: {}",
        report.aggregate.ok_jobs,
        report.aggregate.mean_throughput,
        report.aggregate.dispute_budget_violated,
    );

    // The whole report serializes deterministically — same bytes for any
    // worker-thread count.
    let json = report.to_json();
    let rerun = run_sweep(&spec, 1).expect("spec is valid");
    assert_eq!(json, rerun.to_json());
    println!("report JSON: {} bytes (thread-count invariant)", json.len());
}
