//! Replicated state machine: a primary replica broadcasts a log of
//! commands to its peers with NAB, with one compromised replica in the
//! cluster — the paper's motivating application (replicated fault-tolerant
//! state machines, Section 1).
//!
//! Run with: `cargo run --example replicated_log`

use std::collections::BTreeSet;

use nab_repro::nab::adversary::LyingCorruptor;
use nab_repro::nab::engine::{run_many, NabConfig, NabEngine, SOURCE};
use nab_repro::nab::Value;
use nab_repro::netgraph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A toy bank ledger command, serialized into 16-bit symbols.
#[derive(Debug, Clone, PartialEq)]
struct Command {
    account: u16,
    amount: u16,
    op: u16, // 0 = deposit, 1 = withdraw
}

impl Command {
    fn to_value(&self, pad_to: usize) -> Value {
        let mut raw = vec![self.account as u64, self.amount as u64, self.op as u64];
        raw.resize(pad_to, 0);
        Value::from_u64s(&raw)
    }

    fn from_value(v: &Value) -> Command {
        let s = v.symbols();
        Command {
            account: s[0].0,
            amount: s[1].0,
            op: s[2].0,
        }
    }
}

fn main() {
    // Five replicas, heterogeneous link speeds (the primary has fast links
    // to some peers, slow to others).
    let mut rng = StdRng::seed_from_u64(9);
    let cluster = gen::complete_heterogeneous(5, 1, 4, &mut rng);
    let cfg = NabConfig {
        f: 1,
        symbols: 32,
        seed: 1,
    };
    let mut engine = NabEngine::new(cluster, cfg).expect("cluster supports BB");

    // Replica 3 is compromised: it corrupts forwarded log entries and lies
    // about it during dispute control.
    let compromised = BTreeSet::from([3]);
    let mut adv = LyingCorruptor;

    let commands = [
        Command {
            account: 7,
            amount: 100,
            op: 0,
        },
        Command {
            account: 7,
            amount: 30,
            op: 1,
        },
        Command {
            account: 9,
            amount: 500,
            op: 0,
        },
        Command {
            account: 7,
            amount: 25,
            op: 1,
        },
        Command {
            account: 9,
            amount: 125,
            op: 1,
        },
    ];

    // Each replica applies agreed commands to its own ledger copy.
    let mut ledgers: Vec<std::collections::BTreeMap<u16, i64>> =
        vec![std::collections::BTreeMap::new(); 5];

    for (i, cmd) in commands.iter().enumerate() {
        let report = engine
            .run_instance(&cmd.to_value(32), &compromised, &mut adv)
            .expect("instance runs");
        println!(
            "log[{i}] {:?}: dispute={} disputes_so_far={:?}",
            cmd,
            report.dispute_ran,
            engine.disputes().pairs
        );
        for (&replica, out) in &report.outputs {
            if compromised.contains(&replica) {
                continue;
            }
            let decided = Command::from_value(out);
            assert_eq!(decided, *cmd, "replica {replica} diverged!");
            let bal = ledgers[replica].entry(decided.account).or_insert(0);
            *bal += if decided.op == 0 {
                decided.amount as i64
            } else {
                -(decided.amount as i64)
            };
        }
    }

    // All honest ledgers identical.
    let honest: Vec<usize> = (0..5).filter(|r| !compromised.contains(r)).collect();
    for w in honest.windows(2) {
        assert_eq!(ledgers[w[0]], ledgers[w[1]]);
    }
    println!(
        "\nfinal ledger (all honest replicas agree): {:?}",
        ledgers[honest[0]]
    );

    // Throughput over a longer run for capacity planning.
    let summary = run_many(&mut engine, 20, &compromised, &mut adv, 5).expect("run");
    println!(
        "\n20 more entries: throughput {:.2} bits/time-unit, {} dispute rounds, correct={} (source = replica {})",
        summary.throughput, summary.dispute_rounds, summary.all_correct, SOURCE
    );
}
