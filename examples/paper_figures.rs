//! Reproduces every quantity the paper states about its worked examples
//! (Figures 1 and 2), and prints the graphs in Graphviz DOT format.
//!
//! Run with: `cargo run --example paper_figures`

use std::collections::BTreeSet;

use nab_repro::nab::bounds::{omega_subsets, pair, u_k};
use nab_repro::netgraph::arborescence::pack_arborescences;
use nab_repro::netgraph::flow::{broadcast_rate, min_cut};
use nab_repro::netgraph::gen;
use nab_repro::netgraph::treepack::pack_spanning_trees;
use nab_repro::netgraph::UnGraph;

fn main() {
    // --- Figure 1(a): the running example graph. -------------------------
    let g = gen::figure_1a();
    println!("Figure 1(a) — directed graph G (paper node i = id i−1):");
    println!("{}", g.to_dot());
    println!(
        "MINCUT(G,1,2)={}  MINCUT(G,1,3)={}  MINCUT(G,1,4)={}  γ={}   (paper: 2, 3, 2, 2)\n",
        min_cut(&g, 0, 1),
        min_cut(&g, 0, 2),
        min_cut(&g, 0, 3),
        broadcast_rate(&g, 0),
    );

    // --- Figure 1(b): after the 2–3 dispute. -----------------------------
    let gb = gen::figure_1b();
    let disputes = BTreeSet::from([pair(1, 2)]);
    let omega = omega_subsets(&gb, 1, &disputes);
    println!("Figure 1(b) — after nodes 2,3 disputed:");
    println!(
        "Ω_k = {:?}   (paper: {{1,2,4}} and {{1,3,4}})",
        omega
            .iter()
            .map(|h| h.iter().map(|v| v + 1).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    println!("U_k = {:?}   (paper: 2)\n", u_k(&gb, 1, &disputes).unwrap());

    // --- Figure 2: spanning-tree packings. -------------------------------
    let g2 = gen::figure_2a();
    let gamma = broadcast_rate(&g2, 0);
    let trees = pack_arborescences(&g2, 0, gamma).expect("γ trees embed");
    println!("Figure 2(a)/(c) — γ = {gamma} unit-capacity spanning trees:");
    for (i, t) in trees.iter().enumerate() {
        let edges: Vec<String> = t
            .edges
            .iter()
            .map(|(s, d)| format!("({},{})", s + 1, d + 1))
            .collect();
        println!("  tree {}: {}", i + 1, edges.join(" "));
    }
    let uses = trees
        .iter()
        .flat_map(|t| &t.edges)
        .filter(|&&(s, d)| (s, d) == (0, 1))
        .count();
    println!("  link (1,2) used by {uses} trees (paper: both trees)\n");

    let u2 = UnGraph::from_digraph(&g2);
    let ut = pack_spanning_trees(&u2, 1).expect("undirected spanning tree exists");
    let edges: Vec<String> = ut[0]
        .iter()
        .map(|(a, b)| format!("({},{})", a + 1, b + 1))
        .collect();
    println!(
        "Figure 2(b)/(d) — undirected view and one spanning tree: {}",
        edges.join(" ")
    );
}
